// Observability subsystem tests: the metrics registry, tracing spans, the
// JSON/summary exporters, and the tentpole guarantee — instrumentation
// never perturbs the pipeline's results (obs-enabled runs are bitwise
// identical to obs-disabled runs at any thread count).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "auditherm/auditherm.hpp"

namespace {

using namespace auditherm;

// --- Registry ------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry registry;
  const auto c = obs::counter_id("test.counter");
  const auto g = obs::gauge_id("test.gauge");
  const auto h = obs::histogram_id("test.histogram");

  registry.add(c);
  registry.add(c, 41);
  registry.set(g, 2.5);
  registry.set(g, 4.0);  // last write wins
  registry.observe(h, 1.0);
  registry.observe(h, 3.0);
  registry.observe(h, 1000.0);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "test.counter");
  EXPECT_EQ(snap.counters[0].second, 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 4.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 3u);
  EXPECT_EQ(snap.histograms[0].sum, 1004.0);
  EXPECT_EQ(snap.histograms[0].max, 1000.0);

  EXPECT_EQ(registry.counter("test.counter"), 42u);
  EXPECT_EQ(registry.counter("never.recorded"), 0u);
}

TEST(MetricsRegistry, HistogramBucketLayout) {
  using L = obs::HistogramLayout;
  EXPECT_EQ(L::bucket_of(0.0), 0u);
  EXPECT_EQ(L::bucket_of(-5.0), 0u);
  EXPECT_EQ(L::bucket_of(1.0), 0u);
  EXPECT_EQ(L::bucket_of(2.0), 1u);
  EXPECT_EQ(L::bucket_of(3.0), 2u);
  EXPECT_EQ(L::bucket_of(4.0), 2u);
  EXPECT_EQ(L::bucket_of(1e18), L::kBucketCount - 1);  // overflow bucket
  EXPECT_EQ(L::upper_bound(0), 1.0);
  EXPECT_EQ(L::upper_bound(3), 8.0);
}

TEST(MetricsRegistry, InternRejectsKindMismatch) {
  (void)obs::counter_id("test.kind_mismatch");
  EXPECT_THROW((void)obs::gauge_id("test.kind_mismatch"),
               std::invalid_argument);
  // Idempotent for the same kind.
  const auto a = obs::counter_id("test.kind_mismatch");
  const auto b = obs::counter_id("test.kind_mismatch");
  EXPECT_EQ(a.index(), b.index());
}

TEST(MetricsRegistry, ConcurrentShardsMergeToExactTotals) {
  obs::MetricsRegistry registry;
  const auto c = obs::counter_id("test.concurrent_counter");
  const auto h = obs::histogram_id("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.add(c);
        registry.observe(h, 3.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = registry.snapshot();
  EXPECT_EQ(registry.counter("test.concurrent_counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto hist = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& s) { return s.name == "test.concurrent_hist"; });
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_EQ(hist->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Integer bucket counts are exact; the double sum is 3.0 * count exactly
  // (powers of two times 3 accumulate without rounding at this scale).
  EXPECT_EQ(hist->sum, 3.0 * kThreads * kPerThread);
}

// --- Recorder / spans ----------------------------------------------------

TEST(TraceSpan, NoRecorderMeansNoSpans) {
  ASSERT_EQ(obs::current(), nullptr);
  { obs::TraceSpan span("orphan"); }
  obs::Recorder recorder;
  EXPECT_TRUE(recorder.spans().empty());
}

TEST(TraceSpan, NestedSpansFormATree) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Recorder recorder;
  {
    obs::RecorderScope scope(&recorder);
    obs::TraceSpan outer("outer");
    {
      obs::TraceSpan inner("inner");
      obs::TraceSpan innermost("innermost");
    }
    obs::TraceSpan sibling("sibling");
  }
  const auto spans = recorder.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Ordered by id == construction order.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "innermost");
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[3].parent, spans[0].id);
}

TEST(TraceSpan, RecorderScopeIsNoOpWhenAlreadyCurrent) {
  obs::Recorder recorder;
  obs::RecorderScope outer(&recorder);
  EXPECT_EQ(obs::current(), &recorder);
  {
    obs::RecorderScope inner(&recorder);  // no-op, must not clear on exit
    EXPECT_EQ(obs::current(), &recorder);
  }
  EXPECT_EQ(obs::current(), &recorder);
}

// --- Pipeline integration ------------------------------------------------

/// Fixed 8-day dataset shared by the integration tests below.
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 8;
    config.failure_days = 0;
    return sim::generate_dataset(config);
  }();
  return ds;
}

core::DataSplit split() {
  auto required = dataset().sensor_ids();
  const auto inputs = dataset().input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  return core::split_dataset(dataset().trace, required, dataset().schedule,
                             hvac::Mode::kOccupied);
}

core::PipelineResult run_with_options(std::size_t threads,
                                      const core::RunOptions& options) {
  core::PipelineConfig config;
  config.threads = threads;
  const core::ThermalModelingPipeline pipeline(config);
  return pipeline.run(dataset().trace, dataset().schedule, split(),
                      dataset().wireless_ids(), dataset().input_ids(),
                      options);
}

void expect_bitwise_equal(const core::PipelineResult& a,
                          const core::PipelineResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.clustering.eigenvalues, b.clustering.eigenvalues);
  EXPECT_EQ(a.selection.per_cluster, b.selection.per_cluster);
  EXPECT_EQ(a.reduced_model.a(), b.reduced_model.a());
  EXPECT_EQ(a.reduced_model.a2(), b.reduced_model.a2());
  EXPECT_EQ(a.reduced_model.b(), b.reduced_model.b());
  EXPECT_EQ(a.reduced_eval.pooled_rms, b.reduced_eval.pooled_rms);
  EXPECT_EQ(a.reduced_eval.channel_abs_errors, b.reduced_eval.channel_abs_errors);
  EXPECT_EQ(a.cluster_mean_errors.per_cluster_abs,
            b.cluster_mean_errors.per_cluster_abs);
}

TEST(ObsPipeline, SingleThreadSpanTreeIsExact) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Recorder recorder;
  core::RunOptions options;
  options.metrics = &recorder;
  (void)run_with_options(/*threads=*/1, options);

  const auto spans = recorder.spans();
  std::vector<std::string> names;
  names.reserve(spans.size());
  for (const auto& s : spans) names.push_back(s.name);

  // At one thread nothing runs on the pool, so the span log is the exact
  // serial execution order of the instrumented regions.
  const std::vector<std::string> expected = {
      "pipeline.run",
      "pipeline.prepare",
      "stage.training_view",
      "stage.similarity_graph",
      "stage.spectrum",
      "linalg.eigen_symmetric",
      "stage.clustering",
      "stage.cluster_sets",
      "stage.cluster_means",
      "stage.evaluation_windows",
      "pipeline.select",
      "pipeline.identify",
      "sysid.fit",
      "pipeline.evaluate",
  };
  EXPECT_EQ(names, expected);

  // Parent links: prepare/select/identify/evaluate under run, stages
  // under prepare, kernels under their stage.
  std::map<std::string, std::uint64_t> id_of;
  for (const auto& s : spans) id_of[s.name] = s.id;
  std::map<std::string, std::uint64_t> parent_of;
  for (const auto& s : spans) parent_of[s.name] = s.parent;
  EXPECT_EQ(parent_of["pipeline.run"], 0u);
  EXPECT_EQ(parent_of["pipeline.prepare"], id_of["pipeline.run"]);
  EXPECT_EQ(parent_of["stage.spectrum"], id_of["pipeline.prepare"]);
  EXPECT_EQ(parent_of["linalg.eigen_symmetric"], id_of["stage.spectrum"]);
  EXPECT_EQ(parent_of["pipeline.select"], id_of["pipeline.run"]);
  EXPECT_EQ(parent_of["sysid.fit"], id_of["pipeline.identify"]);
  EXPECT_EQ(parent_of["pipeline.evaluate"], id_of["pipeline.run"]);

  // Exact counters for one uncached run.
  const auto& metrics = recorder.metrics();
  EXPECT_EQ(metrics.counter("pipeline.runs"), 1u);
  EXPECT_EQ(metrics.counter("pipeline.prepares"), 1u);
  EXPECT_EQ(metrics.counter("linalg.eigen_calls"), 1u);
  EXPECT_GT(metrics.counter("linalg.jacobi_sweeps"), 0u);
  EXPECT_GT(metrics.counter("sysid.fit_transitions"), 0u);
  EXPECT_GT(metrics.counter("parallel.tasks"), 0u);
  // Serial run: no pooled batches, every task on the caller... and the
  // caller-side task counters only tick on the pooled path.
  EXPECT_EQ(metrics.counter("parallel.pooled_batches"), 0u);
  EXPECT_EQ(metrics.counter("parallel.helper_joins"), 0u);
}

TEST(ObsPipeline, CacheCountersMirrorIntoRunRecorder) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Recorder recorder;
  core::StageCache cache;
  core::RunOptions options;
  options.metrics = &recorder;
  options.cache = &cache;
  (void)run_with_options(1, options);
  (void)run_with_options(1, options);

  const auto& metrics = recorder.metrics();
  const std::string spectrum(core::stage::kSpectrum);
  EXPECT_EQ(metrics.counter("stage_cache.miss." + spectrum), 1u);
  EXPECT_EQ(metrics.counter("stage_cache.hit." + spectrum), 1u);
  EXPECT_EQ(cache.stats(core::stage::kSpectrum).misses, 1u);
  EXPECT_EQ(cache.stats(core::stage::kSpectrum).hits, 1u);

  // clear() resets the cache's visible stats but the run recorder's
  // mirrored counters are monotonic.
  cache.clear();
  EXPECT_EQ(cache.stats(core::stage::kSpectrum).misses, 0u);
  EXPECT_EQ(metrics.counter("stage_cache.miss." + spectrum), 1u);
  // The second eigendecomposition never ran: the cache hit skipped it.
  EXPECT_EQ(metrics.counter("linalg.eigen_calls"), 1u);
}

/// Counter names whose values legitimately depend on the thread count
/// (work stealing balance, pool participation); everything else must be
/// identical at any thread count.
bool thread_dependent(const std::string& name) {
  return name == "parallel.pooled_batches" || name == "parallel.tasks_caller" ||
         name == "parallel.tasks_helper" || name == "parallel.helper_joins";
}

std::map<std::string, std::uint64_t> deterministic_counters(
    const obs::Recorder& recorder) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : recorder.metrics().snapshot().counters) {
    if (!thread_dependent(name)) out[name] = value;
  }
  return out;
}

TEST(ObsPipeline, MultiThreadSweepSpansAreAWellFormedTree) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const std::vector<core::SweepCase> cases{
      {core::SelectionStrategy::kStratifiedNearMean, 7},
      {core::SelectionStrategy::kStratifiedRandom, 1},
      {core::SelectionStrategy::kSimpleRandom, 1},
  };
  const auto sweep_at = [&](std::size_t threads, obs::Recorder& recorder) {
    core::PipelineConfig base;
    base.threads = threads;
    core::RunOptions options;
    options.metrics = &recorder;
    return core::run_strategy_sweep(base, cases, dataset().trace,
                                    dataset().schedule, split(),
                                    dataset().wireless_ids(),
                                    dataset().input_ids(), options);
  };

  obs::Recorder serial_rec;
  const auto serial = sweep_at(1, serial_rec);
  obs::Recorder pooled_rec;
  const auto pooled = sweep_at(4, pooled_rec);

  // Same results (the standing determinism guarantee)...
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_bitwise_equal(serial[i], pooled[i],
                         "case " + std::to_string(i));
  }
  // ...and the same deterministic counters: batch/task decomposition,
  // stage cache traffic, kernel invocations are thread-count independent.
  EXPECT_EQ(deterministic_counters(serial_rec),
            deterministic_counters(pooled_rec));

  // Structural span checks (exact interleaving varies across threads):
  // ids unique and ascending, every parent precedes its child, and the
  // big phases all show up.
  const auto spans = pooled_rec.spans();
  std::set<std::uint64_t> seen;
  std::size_t case_spans = 0;
  for (const auto& s : spans) {
    EXPECT_TRUE(seen.insert(s.id).second);
    if (s.parent != 0) {
      EXPECT_LT(s.parent, s.id);
      EXPECT_TRUE(seen.count(s.parent)) << s.name;
    }
    if (s.name == "sweep.case") ++case_spans;
  }
  EXPECT_EQ(case_spans, cases.size());
  const auto has = [&](std::string_view name) {
    return std::any_of(spans.begin(), spans.end(),
                       [&](const auto& s) { return s.name == name; });
  };
  EXPECT_TRUE(has("pipeline.sweep"));
  EXPECT_TRUE(has("pipeline.prepare"));
  EXPECT_TRUE(has("parallel.batch"));
  EXPECT_TRUE(has("sysid.fit"));
}

TEST(ObsPipeline, InstrumentedRunIsBitwiseIdenticalToUninstrumented) {
  // The acceptance pin: observability only observes. With a recorder
  // installed vs none at all, at 1 and 4 threads, every float of the
  // result is identical.
  core::RunOptions plain;
  const auto reference = run_with_options(1, plain);
  for (std::size_t threads : {1u, 4u}) {
    obs::Recorder recorder;
    core::RunOptions instrumented;
    instrumented.metrics = &recorder;
    expect_bitwise_equal(
        reference, run_with_options(threads, instrumented),
        "obs-enabled threads=" + std::to_string(threads));
    expect_bitwise_equal(reference, run_with_options(threads, plain),
                         "obs-disabled threads=" + std::to_string(threads));
    if (obs::kCompiledIn) {
      EXPECT_FALSE(recorder.spans().empty());
    }
  }
}

// --- Exporters -----------------------------------------------------------

/// Minimal JSON scanner for the exporter tests: enough to check
/// structural well-formedness (balanced, quoted) without a JSON library.
void expect_balanced_json(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsExport, JsonCarriesSchemaCountersAndSpans) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Recorder recorder;
  {
    obs::RecorderScope scope(&recorder);
    obs::TraceSpan span("export.test_span");
    recorder.metrics().add_counter("export.test_counter", 7);
    recorder.metrics().set_gauge("export.test_gauge", 2.5);
    recorder.metrics().observe_histogram("export.test_hist", 3.0);
  }
  const auto json = obs::to_json(recorder);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\": \"auditherm.metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"export.test_counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"export.test_gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"export.test_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"export.test_span\""), std::string::npos);
}

TEST(ObsExport, JsonFileRoundTrip) {
  obs::Recorder recorder;
  recorder.metrics().add_counter("export.file_counter", 3);
  const std::string path = ::testing::TempDir() + "obs_export_test.json";
  ASSERT_TRUE(obs::write_json_file(path, recorder));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), obs::to_json(recorder));
  std::remove(path.c_str());

  EXPECT_FALSE(obs::write_json_file("/nonexistent-dir/x.json", recorder));
}

TEST(ObsExport, SummaryListsSpansAndCounters) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Recorder recorder;
  {
    obs::RecorderScope scope(&recorder);
    obs::TraceSpan outer("summary.outer");
    obs::TraceSpan inner("summary.inner");
    recorder.metrics().add_counter("summary.counter", 5);
  }
  const std::string path = ::testing::TempDir() + "obs_summary_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  obs::write_summary(f, recorder);
  std::fclose(f);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());
  EXPECT_NE(text.find("summary.outer"), std::string::npos);
  EXPECT_NE(text.find("summary.inner"), std::string::npos);
  EXPECT_NE(text.find("summary.counter"), std::string::npos);
}

}  // namespace
