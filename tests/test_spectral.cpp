// Tests for Laplacian spectral clustering and the eigengap heuristic.

#include "auditherm/clustering/spectral.hpp"

#include "auditherm/linalg/decompositions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

namespace clustering = auditherm::clustering;
namespace linalg = auditherm::linalg;
using linalg::Matrix;

namespace {

/// Block-structured similarity: `blocks` groups of `size` vertices with
/// strong in-block weights and weak cross-block weights.
clustering::SimilarityGraph block_graph(std::size_t blocks, std::size_t size,
                                        double in_w = 0.9,
                                        double cross_w = 0.02) {
  clustering::SimilarityGraph graph;
  const std::size_t n = blocks * size;
  for (std::size_t i = 0; i < n; ++i) {
    graph.channels.push_back(static_cast<int>(i + 1));
  }
  graph.weights = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = (i / size == j / size) ? in_w : cross_w;
      graph.weights(i, j) = w;
      graph.weights(j, i) = w;
    }
  }
  return graph;
}

/// True when the two labelings induce the same partition (label ids may
/// permute between numerically different embeddings).
bool same_partition(const std::vector<std::size_t>& a,
                    const std::vector<std::size_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      if ((a[i] == a[j]) != (b[i] == b[j])) return false;
    }
  }
  return true;
}

}  // namespace

TEST(Laplacian, RowSumsZeroAndPsd) {
  const auto graph = block_graph(2, 3);
  const auto l = clustering::laplacian(graph.weights);
  for (std::size_t i = 0; i < l.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < l.cols(); ++j) row_sum += l(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
  const auto eig = linalg::eigen_symmetric(l);
  for (double lambda : eig.eigenvalues) EXPECT_GE(lambda, -1e-10);
  EXPECT_NEAR(eig.eigenvalues[0], 0.0, 1e-10);  // the constant mode
}

TEST(Laplacian, RejectsNonSquare) {
  EXPECT_THROW((void)clustering::laplacian(Matrix(2, 3)),
               std::invalid_argument);
}

TEST(Spectral, DisconnectedComponentsGiveZeroEigenvalues) {
  const auto graph = block_graph(3, 4, 0.8, 0.0);  // truly disconnected
  const auto analysis = clustering::analyze_spectrum(graph.weights);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(analysis.eigenvalues[i], 0.0, 1e-10);
  }
  EXPECT_GT(analysis.eigenvalues[3], 0.1);
}

TEST(Spectral, EigengapPicksBlockCount) {
  for (std::size_t blocks : {2u, 3u, 4u}) {
    const auto graph = block_graph(blocks, 5);
    const auto analysis = clustering::analyze_spectrum(graph.weights);
    EXPECT_EQ(analysis.eigengap_cluster_count(2, 8), blocks)
        << "blocks=" << blocks;
  }
}

TEST(Spectral, LogEigengapsShape) {
  const auto graph = block_graph(2, 4);
  const auto analysis = clustering::analyze_spectrum(graph.weights);
  const auto gaps = analysis.log_eigengaps();
  EXPECT_EQ(gaps.size(), analysis.eigenvalues.size() - 1);
}

TEST(Spectral, EigengapRangeValidation) {
  const auto graph = block_graph(2, 3);
  const auto analysis = clustering::analyze_spectrum(graph.weights);
  EXPECT_THROW((void)analysis.eigengap_cluster_count(8, 2),
               std::invalid_argument);
}

TEST(Spectral, ClusterRecoveryWithFixedK) {
  const auto graph = block_graph(3, 6);
  clustering::SpectralOptions options;
  options.cluster_count = 3;
  const auto result = clustering::spectral_cluster(graph, options);
  EXPECT_EQ(result.cluster_count, 3u);
  // Each block is one cluster.
  std::set<std::size_t> labels;
  for (std::size_t b = 0; b < 3; ++b) {
    const auto label = result.labels[b * 6];
    labels.insert(label);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(result.labels[b * 6 + i], label);
    }
  }
  EXPECT_EQ(labels.size(), 3u);
}

TEST(Spectral, AutoKMatchesEigengap) {
  const auto graph = block_graph(2, 8);
  const auto result = clustering::spectral_cluster(graph);
  EXPECT_EQ(result.cluster_count, 2u);
  EXPECT_EQ(result.eigenvalues.size(), 16u);
}

TEST(Spectral, ClustersAccessor) {
  const auto graph = block_graph(2, 3);
  clustering::SpectralOptions options;
  options.cluster_count = 2;
  const auto result = clustering::spectral_cluster(graph, options);
  const auto clusters = result.clusters();
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size() + clusters[1].size(), 6u);
  // cluster_of agrees with the grouping.
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (auto id : clusters[c]) {
      EXPECT_EQ(result.cluster_of(id), c);
    }
  }
  EXPECT_THROW((void)result.cluster_of(999), std::invalid_argument);
}

TEST(Spectral, MalformedClustersThrowInsteadOfUB) {
  // A label >= cluster_count used to index out[labels[i]] out of bounds.
  clustering::ClusteringResult bad;
  bad.channels = {1, 2, 3};
  bad.labels = {0, 1, 2};
  bad.cluster_count = 2;  // label 2 is out of range
  try {
    (void)bad.clusters();
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("label 2"), std::string::npos) << what;
    EXPECT_NE(what.find("index 2"), std::string::npos) << what;
  }

  // Label/channel count mismatch is malformed too.
  clustering::ClusteringResult ragged;
  ragged.channels = {1, 2, 3};
  ragged.labels = {0, 1};
  ragged.cluster_count = 2;
  EXPECT_THROW((void)ragged.clusters(), std::out_of_range);
}

TEST(Spectral, PrecomputedAnalysisOverloadMatchesOneShot) {
  // The stage-cache split: spectral_cluster(graph, analysis, options) from
  // a precomputed spectrum must equal the one-shot overload bitwise.
  const auto graph = block_graph(3, 5);
  clustering::SpectralOptions options;
  options.cluster_count = 3;
  const auto one_shot = clustering::spectral_cluster(graph, options);
  const auto analysis =
      clustering::analyze_spectrum(graph.weights, options.laplacian);
  const auto staged = clustering::spectral_cluster(graph, analysis, options);
  EXPECT_EQ(one_shot.labels, staged.labels);
  EXPECT_EQ(one_shot.cluster_count, staged.cluster_count);
  EXPECT_EQ(one_shot.eigenvalues, staged.eigenvalues);

  // Mismatched analysis dimensions are rejected.
  const auto wrong = clustering::analyze_spectrum(
      block_graph(2, 3).weights, options.laplacian);
  EXPECT_THROW((void)clustering::spectral_cluster(graph, wrong, options),
               std::invalid_argument);
}

TEST(Spectral, ClusterCountValidation) {
  const auto graph = block_graph(2, 2);
  clustering::SpectralOptions options;
  options.cluster_count = 10;
  EXPECT_THROW((void)clustering::spectral_cluster(graph, options),
               std::invalid_argument);
}

TEST(Spectral, DeterministicForSameSeed) {
  const auto graph = block_graph(3, 5);
  const auto a = clustering::spectral_cluster(graph);
  const auto b = clustering::spectral_cluster(graph);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Spectral, TridiagonalMethodRecoversSameClusters) {
  const auto graph = block_graph(3, 6);
  clustering::SpectralOptions jacobi;
  jacobi.cluster_count = 3;
  jacobi.eigen_method = linalg::EigenMethod::kJacobi;
  clustering::SpectralOptions tridiagonal = jacobi;
  tridiagonal.eigen_method = linalg::EigenMethod::kTridiagonal;
  const auto a = clustering::spectral_cluster(graph, jacobi);
  const auto b = clustering::spectral_cluster(graph, tridiagonal);
  EXPECT_TRUE(same_partition(a.labels, b.labels));
  EXPECT_EQ(a.cluster_count, b.cluster_count);
  // The tridiagonal path computes only the needed leading pairs; those
  // must agree with Jacobi's full spectrum.
  const std::size_t shared =
      std::min(a.eigenvalues.size(), b.eigenvalues.size());
  ASSERT_EQ(b.eigenvalues.size(),
            clustering::needed_eigenpairs(tridiagonal,
                                          graph.channels.size()));
  for (std::size_t i = 0; i < shared; ++i) {
    EXPECT_NEAR(a.eigenvalues[i], b.eigenvalues[i], 1e-10) << "i=" << i;
  }
}

TEST(Spectral, PartialAnalysisClustersLikeFullSpectrum) {
  // A partial (n x m) analysis with m >= k_max + 1 eigenpairs must produce
  // the same clustering as the full spectrum: only the leading embedding
  // columns feed k-means and the eigengap scan.
  const auto graph = block_graph(3, 6);
  clustering::SpectralOptions options;  // auto-k via eigengap, k_max = 8
  const std::size_t n = graph.channels.size();
  const auto pairs = clustering::needed_eigenpairs(options, n);
  EXPECT_EQ(pairs, std::min(n, options.k_max + 1));

  const auto full = clustering::spectral_cluster(graph, options);
  const auto partial = clustering::analyze_spectrum(
      graph.weights, options.laplacian, linalg::EigenMethod::kTridiagonal,
      pairs);
  ASSERT_EQ(partial.eigenvalues.size(), pairs);
  ASSERT_EQ(partial.eigenvectors.cols(), pairs);
  ASSERT_EQ(partial.eigenvectors.rows(), n);
  const auto staged = clustering::spectral_cluster(graph, partial, options);
  EXPECT_TRUE(same_partition(staged.labels, full.labels));
  EXPECT_EQ(staged.cluster_count, full.cluster_count);
}

TEST(Spectral, PartialAnalysisTooShallowForKThrows) {
  // An analysis holding fewer eigenpairs than the requested k cannot build
  // the embedding; the precomputed overload must reject it, not read OOB.
  const auto graph = block_graph(2, 4);
  const auto partial = clustering::analyze_spectrum(
      graph.weights, clustering::LaplacianKind::kSymmetricNormalized,
      linalg::EigenMethod::kTridiagonal, /*max_pairs=*/2);
  clustering::SpectralOptions options;
  options.cluster_count = 3;  // needs 3 embedding columns, analysis has 2
  EXPECT_THROW((void)clustering::spectral_cluster(graph, partial, options),
               std::invalid_argument);
}

TEST(Spectral, NeededEigenpairsClampsToMatrixSize) {
  clustering::SpectralOptions options;  // k_max = 8 -> wants 9
  EXPECT_EQ(clustering::needed_eigenpairs(options, 5), 5u);
  options.cluster_count = 4;
  EXPECT_EQ(clustering::needed_eigenpairs(options, 100), 9u);
  options.cluster_count = 12;  // explicit k above k_max + 1
  EXPECT_EQ(clustering::needed_eigenpairs(options, 100), 12u);
}

TEST(Spectral, AutoMethodMatchesJacobiOnSmallGraphs) {
  // Below the auto threshold the pipeline stays on Jacobi, so kAuto must
  // be bitwise identical to explicitly requesting it.
  const auto graph = block_graph(3, 5);
  clustering::SpectralOptions auto_opts;
  auto_opts.eigen_method = linalg::EigenMethod::kAuto;
  clustering::SpectralOptions jacobi_opts;
  jacobi_opts.eigen_method = linalg::EigenMethod::kJacobi;
  const auto a = clustering::spectral_cluster(graph, auto_opts);
  const auto b = clustering::spectral_cluster(graph, jacobi_opts);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.eigenvalues, b.eigenvalues);
}
