#pragma once

/// \file diagnostics.hpp
/// Model-quality diagnostics beyond raw prediction error: one-step
/// residual statistics, per-channel coefficients of determination, and
/// information criteria for comparing model orders on equal footing.

#include <vector>

#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/model.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::sysid {

/// One-step (equation-error) fit diagnostics over a trace.
struct FitDiagnostics {
  std::vector<timeseries::ChannelId> channels;  ///< model state order
  /// Per-channel one-step residual standard deviation (degC).
  linalg::Vector residual_std;
  /// Per-channel coefficient of determination of the one-step prediction
  /// against a predict-the-previous-value baseline: 1 - SSE/SST where SST
  /// uses T(k+1) - T(k). Values > 0 mean the model beats persistence.
  linalg::Vector r_squared_vs_persistence;
  std::size_t transitions = 0;  ///< transitions evaluated
  std::size_t parameters = 0;   ///< estimated parameters per output row

  /// Akaike information criterion under a Gaussian residual model, summed
  /// over channels; lower is better. Comparable across model orders fit
  /// on the SAME transitions.
  double aic = 0.0;
  /// Bayesian information criterion; penalizes parameters harder.
  double bic = 0.0;
};

/// Compute one-step diagnostics of `model` on `trace` (optionally row-
/// filtered, same semantics as ModelEstimator::fit). Transitions are the
/// in-segment rows where every model channel is valid. Throws
/// std::runtime_error when no transitions exist.
[[nodiscard]] FitDiagnostics diagnose_fit(
    const ThermalModel& model, const timeseries::TraceView& trace,
    const std::vector<bool>& row_filter = {});

/// Convenience: fit first- and second-order models on the same data and
/// report which order the information criteria prefer.
struct OrderComparison {
  FitDiagnostics first;
  FitDiagnostics second;
  /// true when the second-order model wins on AIC (and almost always BIC).
  [[nodiscard]] bool second_order_preferred() const noexcept {
    return second.aic < first.aic;
  }
};

[[nodiscard]] OrderComparison compare_orders(
    const std::vector<timeseries::ChannelId>& state_ids,
    const std::vector<timeseries::ChannelId>& input_ids,
    const timeseries::TraceView& trace,
    const std::vector<bool>& row_filter = {},
    const EstimationOptions& options = {});

}  // namespace auditherm::sysid
