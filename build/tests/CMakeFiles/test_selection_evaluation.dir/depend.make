# Empty dependencies file for test_selection_evaluation.
# This may be replaced when dependencies are built.
