#pragma once

/// \file streaming.hpp
/// Online identification of thermal models from live sample streams.
///
/// The batch estimator (estimator.hpp) refactorizes the full regression on
/// every call — O(N p^2) per refit. StreamingEstimator instead folds each
/// arriving row into an incrementally maintained QR factorization
/// (linalg::UpdatableQr): a sliding window over T(k) costs one Givens
/// append plus at most one hyperbolic downdate per sample, O(p^2) per step,
/// while producing the same per-window parameters as a fresh batch fit to
/// <= 1e-8. On top of the residual stream sits a two-sided CUSUM
/// change-point detector that flags plant drift (season change, HVAC
/// fault) — the piece that turns the paper's replay pipeline into
/// something deployable against a live auditorium.
///
/// Determinism contract: every result depends only on the pushed sample
/// sequence and the options — never on the thread count or on which
/// accessors the caller happens to invoke between pushes.

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/model.hpp"
#include "auditherm/timeseries/trace_view.hpp"

namespace auditherm::sysid {

/// Residual-CUSUM change-point detection knobs.
///
/// The detector watches the per-transition one-step prediction residual
/// (RMS over the state channels) of a reference model that is re-solved
/// every `refit_transitions` appends. Residuals are normalized against a
/// baseline mean/std learned over `calibration_transitions` (Welford) and
/// then tracked by a slow EWMA while the detector is quiet; the two-sided
/// CUSUM fires when the accumulated normalized excess passes
/// `threshold_sigmas`. After an event the detector re-calibrates from
/// scratch, so a persistent regime change fires exactly once.
struct DriftDetectorOptions {
  bool enabled = true;
  /// CUSUM slack k: per-step |z|-score excess below this is ignored.
  double slack_sigmas = 0.5;
  /// CUSUM decision threshold h, in accumulated sigma units. The default
  /// keeps the stationary 98-day paper run silent (daily occupancy cycles
  /// reach ~half of it) while a season or HVAC-regime switch crosses it
  /// within a day or two of transitions.
  double threshold_sigmas = 25.0;
  /// Transitions used to (re-)learn the residual baseline before arming.
  std::size_t calibration_transitions = 96;
  /// EWMA rate for baseline adaptation while quiet (statistic < h/4).
  double baseline_alpha = 1e-3;
  /// Appends between refreshes of the reference model the residuals are
  /// scored against (48 = one day at the dataset's 30-minute sampling).
  std::size_t refit_transitions = 48;
  /// Reference-model refreshes to skip before calibration starts. The very
  /// first reference is solved from the minimum transition count and may
  /// not have seen a full excitation cycle (e.g. it only knows occupied
  /// hours), so its out-of-sample residuals can inflate the calibration
  /// sigma by 10x and deafen the detector. One warmup refresh guarantees
  /// the scored reference saw >= refit_transitions + min_transitions rows.
  std::size_t warmup_refits = 1;
};

/// One detected change point.
struct DriftEvent {
  /// Source-row index (push count at the time) of the transition that
  /// tripped the threshold.
  std::size_t row = 0;
  /// The CUSUM statistic at firing, in sigma units.
  double statistic = 0.0;
  /// +1 when residuals grew (plant drifted away from the model), -1 when
  /// they shrank (e.g. a noisy regime ended).
  double direction = 0.0;
};

/// StreamingEstimator configuration.
struct StreamingOptions {
  /// Ridge and minimum-transition settings, shared with the batch
  /// estimator so window fits are comparable.
  EstimationOptions estimation;
  /// Sliding-window length in source rows; 0 selects growing-window mode
  /// (never forget). Must be at least history+2 rows when non-zero, else
  /// no transition could ever fit inside the window.
  std::size_t window_rows = 0;
  /// Appended transitions between deterministic re-anchors (a fresh
  /// Householder refactorization of the buffered window), bounding the
  /// roundoff drift of the incrementally updated R. 0 disables periodic
  /// re-anchoring (downdate failures still force one).
  std::size_t reanchor_interval = 512;
  DriftDetectorOptions drift;
};

/// Counters describing what the estimator has done so far; cheap to copy.
struct StreamingStats {
  std::size_t rows_pushed = 0;       ///< samples seen (valid or not)
  std::size_t transitions = 0;       ///< rows folded in (appends)
  std::size_t downdates = 0;         ///< rows aged out via hyperbolic downdate
  std::size_t reanchors = 0;         ///< full refactorizations (periodic + forced)
  std::size_t downdate_refactors = 0;  ///< re-anchors forced by a guard trip
};

/// Online sliding-/growing-window identification with drift detection.
///
/// Usage: construct with the same channel lists and order as a
/// ModelEstimator, then push one sample row at a time (NaN marks a missing
/// value — transitions spanning a gap are skipped exactly like the batch
/// estimator's segment mask). model() returns the current window fit;
/// drift_events() accumulates detected change points.
class StreamingEstimator {
 public:
  /// Throws std::invalid_argument on empty channel lists, negative ridge,
  /// or a non-zero window shorter than history + 2 rows.
  StreamingEstimator(std::vector<timeseries::ChannelId> state_ids,
                     std::vector<timeseries::ChannelId> input_ids,
                     ModelOrder order, StreamingOptions options = {});

  /// Push one sample row: `states` has one entry per state channel,
  /// `inputs` one per input channel, NaN = missing. O(p^2).
  /// Throws std::invalid_argument on size mismatch.
  void push(const linalg::Vector& states, const linalg::Vector& inputs);

  /// Push every row of `trace` in order. The trace must contain all state
  /// and input channels; `row_filter`, when non-empty, must match
  /// trace.size() and excluded rows count as gaps (the batch estimator's
  /// mode-mask semantics).
  void push_trace(const timeseries::TraceView& trace,
                  const std::vector<bool>& row_filter = {});

  [[nodiscard]] const StreamingStats& stats() const noexcept { return stats_; }

  /// Transitions currently inside the window.
  [[nodiscard]] std::size_t window_transitions() const noexcept {
    return window_.size();
  }

  /// True once the window holds at least the batch estimator's minimum
  /// transition count (EstimationOptions::min_transitions semantics).
  [[nodiscard]] bool has_model() const noexcept;

  /// The model identified from the current window; matches a batch
  /// ModelEstimator::fit over the same rows to <= 1e-8 per parameter.
  /// Throws std::runtime_error when has_model() is false.
  [[nodiscard]] const ThermalModel& model() const;

  /// Akaike information criterion of the current window fit, pooled over
  /// the state channels: m p ln(RSS / (m p)) + 2 (#parameters). Compare
  /// across orders for online structure selection (the ARMAX/NMI
  /// information-criterion idea, arXiv 2006.06088). Throws like model().
  [[nodiscard]] double aic() const;

  /// Change points detected so far, in firing order.
  [[nodiscard]] const std::vector<DriftEvent>& drift_events() const noexcept {
    return drift_events_;
  }

  /// The larger of the two one-sided CUSUM statistics right now.
  [[nodiscard]] double cusum_statistic() const noexcept;

  [[nodiscard]] ModelOrder order() const noexcept { return order_; }
  [[nodiscard]] const StreamingOptions& options() const noexcept {
    return options_;
  }

 private:
  struct TransitionRow {
    std::size_t target = 0;        ///< source-row index of T(k+1)
    std::vector<double> z, y;      ///< regressor and target rows
  };

  void evict_aged(std::size_t newest_row);
  void fold_transition(TransitionRow row);
  /// Deterministic re-anchor: refactorize the buffered window from
  /// scratch (Householder when enough rows, sequential Givens otherwise).
  void reanchor();
  void observe_residual(const TransitionRow& row);
  [[nodiscard]] linalg::Matrix solve_theta() const;
  [[nodiscard]] std::size_t min_transitions_needed() const noexcept;

  std::vector<timeseries::ChannelId> state_ids_;
  std::vector<timeseries::ChannelId> input_ids_;
  ModelOrder order_;
  StreamingOptions options_;
  std::size_t history_ = 1;   ///< rows of history a transition needs
  std::size_t n_params_ = 0;  ///< regressor columns per output

  linalg::UpdatableQr qr_;
  std::deque<TransitionRow> window_;
  StreamingStats stats_;
  std::size_t since_anchor_ = 0;

  // Row history ring: values of the most recent `history_` rows.
  std::deque<std::vector<double>> recent_states_;
  std::deque<std::vector<double>> recent_inputs_;
  std::size_t consec_valid_ = 0;  ///< valid-row run ending at the last push

  // Lazily solved window model (invalidated by every fold/evict).
  mutable std::optional<ThermalModel> cached_model_;

  // Drift detector state. The reference model refreshes on an
  // append-count cadence only — never from caller accessor calls — so
  // detection is deterministic for a given push sequence.
  std::optional<linalg::Matrix> drift_theta_;
  std::size_t since_drift_refit_ = 0;
  std::size_t drift_refits_ = 0;  ///< reference models solved so far
  std::size_t calib_count_ = 0;
  double calib_mean_ = 0.0;
  double calib_m2_ = 0.0;
  double base_mean_ = 0.0;
  double base_std_ = 0.0;
  bool armed_ = false;
  double cusum_pos_ = 0.0;
  double cusum_neg_ = 0.0;
  std::vector<DriftEvent> drift_events_;
};

}  // namespace auditherm::sysid
