file(REMOVE_RECURSE
  "CMakeFiles/comfort_monitor.dir/comfort_monitor.cpp.o"
  "CMakeFiles/comfort_monitor.dir/comfort_monitor.cpp.o.d"
  "comfort_monitor"
  "comfort_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comfort_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
