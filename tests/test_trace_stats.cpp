// Tests for cross-channel trace statistics with gaps.

#include "auditherm/timeseries/trace_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/stats.hpp"

namespace ts = auditherm::timeseries;
namespace linalg = auditherm::linalg;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Three channels: 1 and 2 perfectly correlated, 3 anti-correlated with 1;
/// channel 2 has a gap at row 2.
MultiTrace make_trace() {
  MultiTrace trace(TimeGrid(0, 1, 5), {1, 2, 3});
  const double x[5] = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (std::size_t k = 0; k < 5; ++k) {
    trace.set(k, 0, x[k]);
    if (k != 2) trace.set(k, 1, 2.0 * x[k] + 1.0);
    trace.set(k, 2, -x[k] + 10.0);
  }
  return trace;
}

}  // namespace

TEST(TraceStats, CorrelationMatrixValues) {
  const auto corr = ts::correlation_matrix(make_trace());
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);
  EXPECT_NEAR(corr(0, 1), 1.0, 1e-12);   // pairwise-complete, gap skipped
  EXPECT_NEAR(corr(0, 2), -1.0, 1e-12);
  EXPECT_NEAR(corr(1, 2), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(corr(0, 1), corr(1, 0));
}

TEST(TraceStats, CorrelationAgreesWithScalarKernel) {
  std::mt19937_64 rng(5);
  std::normal_distribution<double> d(0.0, 1.0);
  MultiTrace trace(TimeGrid(0, 1, 40), {1, 2});
  linalg::Vector a(40), b(40);
  for (std::size_t k = 0; k < 40; ++k) {
    a[k] = d(rng);
    b[k] = 0.5 * a[k] + d(rng);
    trace.set(k, 0, a[k]);
    trace.set(k, 1, b[k]);
  }
  const auto corr = ts::correlation_matrix(trace);
  EXPECT_NEAR(corr(0, 1), linalg::pearson_correlation(a, b), 1e-10);
}

TEST(TraceStats, CovarianceMatrixIsPsdOnCompleteData) {
  std::mt19937_64 rng(6);
  std::normal_distribution<double> d(0.0, 1.0);
  MultiTrace trace(TimeGrid(0, 1, 60), {1, 2, 3, 4});
  for (std::size_t k = 0; k < 60; ++k)
    for (std::size_t c = 0; c < 4; ++c) trace.set(k, c, d(rng));
  const auto cov = ts::covariance_matrix(trace);
  const auto eig = linalg::eigen_symmetric(cov);
  for (double lambda : eig.eigenvalues) EXPECT_GE(lambda, -1e-10);
}

TEST(TraceStats, RmsDistance) {
  MultiTrace trace(TimeGrid(0, 1, 3), {1, 2});
  for (std::size_t k = 0; k < 3; ++k) {
    trace.set(k, 0, 0.0);
    trace.set(k, 1, 2.0);
  }
  const auto dist = ts::rms_distance_matrix(trace);
  EXPECT_DOUBLE_EQ(dist(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dist(0, 0), 0.0);
}

TEST(TraceStats, RmsDistanceInfiniteWithoutSharedRows) {
  MultiTrace trace(TimeGrid(0, 1, 2), {1, 2});
  trace.set(0, 0, 1.0);
  trace.set(1, 1, 2.0);  // never both valid
  const auto dist = ts::rms_distance_matrix(trace);
  EXPECT_TRUE(std::isinf(dist(0, 1)));
}

TEST(TraceStats, ChannelMeans) {
  const auto means = ts::channel_means(make_trace());
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], (3.0 + 5.0 + 9.0 + 11.0) / 4.0);
}

TEST(TraceStats, ChannelMeansNaNForEmptyChannel) {
  MultiTrace trace(TimeGrid(0, 1, 2), {1, 2});
  trace.set(0, 0, 5.0);
  const auto means = ts::channel_means(trace);
  EXPECT_DOUBLE_EQ(means[0], 5.0);
  EXPECT_TRUE(std::isnan(means[1]));
}

TEST(TraceStats, MaxAbsDifference) {
  const auto trace = make_trace();
  // |x - (-x + 10)| = |2x - 10| maxed at x=1 or 5 -> 8... wait: x=1 -> 8,
  // x=5 -> 0. Max is 8.
  EXPECT_DOUBLE_EQ(ts::max_abs_difference(trace, 1, 3), 8.0);
  EXPECT_THROW((void)ts::max_abs_difference(trace, 1, 99),
               std::invalid_argument);
}

TEST(TraceStats, MaxAbsDifferenceNaNWithoutSharedRows) {
  MultiTrace trace(TimeGrid(0, 1, 2), {1, 2});
  trace.set(0, 0, 1.0);
  trace.set(1, 1, 2.0);
  EXPECT_TRUE(std::isnan(ts::max_abs_difference(trace, 1, 2)));
}

TEST(TraceStats, PairwiseMaxDifferencesCountsPairs) {
  const auto trace = make_trace();
  const auto diffs = ts::pairwise_max_differences(trace, {1, 2, 3});
  EXPECT_EQ(diffs.size(), 3u);  // 3 unordered pairs, all with shared rows
  for (double d : diffs) EXPECT_GE(d, 0.0);
}
