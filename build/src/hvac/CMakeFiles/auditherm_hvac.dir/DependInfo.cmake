
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hvac/comfort.cpp" "src/hvac/CMakeFiles/auditherm_hvac.dir/comfort.cpp.o" "gcc" "src/hvac/CMakeFiles/auditherm_hvac.dir/comfort.cpp.o.d"
  "/root/repo/src/hvac/schedule.cpp" "src/hvac/CMakeFiles/auditherm_hvac.dir/schedule.cpp.o" "gcc" "src/hvac/CMakeFiles/auditherm_hvac.dir/schedule.cpp.o.d"
  "/root/repo/src/hvac/thermostat.cpp" "src/hvac/CMakeFiles/auditherm_hvac.dir/thermostat.cpp.o" "gcc" "src/hvac/CMakeFiles/auditherm_hvac.dir/thermostat.cpp.o.d"
  "/root/repo/src/hvac/vav.cpp" "src/hvac/CMakeFiles/auditherm_hvac.dir/vav.cpp.o" "gcc" "src/hvac/CMakeFiles/auditherm_hvac.dir/vav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/auditherm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auditherm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
