#pragma once

/// \file fleet_control.hpp
/// Fleet-wide scoring of certainty-equivalent predictive control.
///
/// The second workload the input-plan layer enables: for every building
/// regime in a `ScenarioSpec` fleet, identify a reduced thermal model
/// from that building's own simulated trace — with the occupancy input
/// supplied by a `sysid::InputPlan` (the CO2 mass-balance estimate by
/// default, since real halls meter CO2 but not headcounts) — and score a
/// receding-horizon controller planning on that model against the
/// building's existing thermostat rule on the comfort-vs-energy frontier.
///
/// "Certainty-equivalent" means the controller treats the identified
/// model and the exogenous forecast as exact; modeling and occupancy-
/// estimation error enter only through the identified dynamics, which is
/// precisely what the estimated-vs-truth study measures.
///
/// Seeding follows the PR-8 entity-seed contract (`sim::
/// derive_entity_seed`): building `index` of a scoring fleet based at
/// `base_seed` runs its closed loop under `derive_entity_seed(base_seed,
/// index)`, so fleet-scored control runs are reproducible per building
/// and independent across buildings — rescoring one spec alone, at its
/// original index, reproduces its metrics bitwise.

#include <cstdint>
#include <vector>

#include "auditherm/control/closed_loop.hpp"
#include "auditherm/control/controllers.hpp"
#include "auditherm/sim/scenario.hpp"
#include "auditherm/sysid/input_plan.hpp"

namespace auditherm::control {

/// Occupancy source feeding the identification step — the same three
/// sources the CLI's `--occupancy truth|estimated|schedule` exposes.
enum class OccupancySource { kGroundTruth, kCo2Estimated, kSchedulePrior };

/// Knobs of score_fleet_control().
struct FleetControlOptions {
  /// Entity base seed of the scoring runs: building `index` gets
  /// `ClosedLoopConfig::seed = sim::derive_entity_seed(base_seed, index)`
  /// (see fleet_loop_config).
  std::uint64_t base_seed = 77;
  /// Scoring-run length per building, in days. The identification trace
  /// length comes from each spec's own `days`.
  std::size_t days = 14;
  /// Occupancy input of the identification step.
  OccupancySource occupancy = OccupancySource::kCo2Estimated;
  /// Relative ridge of the control-oriented fit. Much stronger than the
  /// prediction default (1e-7): the CO2 occupancy estimate is computed
  /// *from* the VAV flow channels, so it is near-collinear with the flow
  /// regressors, and unshrunk least squares bleeds occupant heat into the
  /// flow columns — the held-out prediction barely notices, but a planner
  /// reading B as cause-and-effect sees airflow that heats the room and
  /// mis-plans catastrophically. 1e-3 restores truth-fit closed-loop
  /// behavior at under 0.1 degC of prediction cost.
  double ridge = 1e-3;
  /// MPC tuning. `mpc.objective.setpoint_c` is overridden with the
  /// PMV-neutral temperature of the run's comfort model — the same value
  /// the scorer uses — so comfort is pursued and judged on one scale.
  MpcOptions mpc;
};

/// One building's scorecard.
struct FleetControlCase {
  sim::ScenarioSpec spec;       ///< the resolved, validated spec
  std::uint64_t loop_seed = 0;  ///< derive_entity_seed(base_seed, index)
  std::size_t zones = 0;        ///< spectral thermal zones found
  /// MAE (people) of the identification occupancy input against the
  /// labeled channel; exactly 0 for kGroundTruth.
  double occupancy_mae = 0.0;
  ClosedLoopMetrics thermostat;  ///< the building's own rule (baseline)
  ClosedLoopMetrics mpc;         ///< certainty-equivalent MPC
};

/// The identification input plan for `source` over the dataset's extended
/// input block [flows..., supply, occupancy, lighting, ambient]: every
/// slot ground truth except occupancy, which kCo2Estimated replaces with
/// the CO2 mass-balance estimate (fed by the building's own VAV flow
/// channels) and kSchedulePrior with a two-level schedule prior.
[[nodiscard]] sysid::InputPlan fleet_input_plan(
    const sim::AuditoriumDataset& dataset, OccupancySource source);

/// Closed-loop configuration for fleet entry `index` under `base_seed`:
/// plant / weather / occupancy / step settings composed down from
/// scenario_config(spec), and the seed block derived per the entity-seed
/// contract — `seed = sim::derive_entity_seed(base_seed, index)`, with
/// the weather and occupancy sub-seeds one derivation deeper (indices 1
/// and 2 off the loop seed) so the scoring season is fresh relative to
/// the spec's own identification trace. The schedule and comfort zones
/// are left at their defaults; score_fleet_control fills them from the
/// identified dataset. Validates the spec.
[[nodiscard]] ClosedLoopConfig fleet_loop_config(const sim::ScenarioSpec& spec,
                                                 std::uint64_t base_seed,
                                                 std::size_t index,
                                                 std::size_t days = 14);

/// Score certainty-equivalent MPC against each building's own thermostat
/// rule across fleet regimes: simulate every spec via sim::run_fleet,
/// identify a reduced model per building (spectral zones -> SMS sensors
/// -> eq. 2 fit, occupancy input per `options.occupancy`, calibrated on
/// the chronological first half of the trace), then run both controllers
/// in closed loop on a fresh per-building season and return one scorecard
/// per spec, in spec order.
///
/// The closed-loop plant is the Brauer auditorium, so every spec must
/// have building == kPaperHall; throws std::invalid_argument (naming the
/// spec) otherwise.
[[nodiscard]] std::vector<FleetControlCase> score_fleet_control(
    const std::vector<sim::ScenarioSpec>& specs,
    const FleetControlOptions& options = {});

}  // namespace auditherm::control
