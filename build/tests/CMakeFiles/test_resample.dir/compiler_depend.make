# Empty compiler generated dependencies file for test_resample.
# This may be replaced when dependencies are built.
