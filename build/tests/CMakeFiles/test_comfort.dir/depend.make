# Empty dependencies file for test_comfort.
# This may be replaced when dependencies are built.
