// auditherm command-line tool.
//
//   auditherm simulate --out trace.csv [--spec spec.json] [--days N]
//       [--failure-days N] [--dropout P] [--seed S] [--truth truth.csv]
//   auditherm simulate --fleet specs.json [--out-dir DIR]
//   auditherm analyze --data trace.csv [--metric correlation|euclidean]
//       [--clusters K] [--order 1|2] [--per-cluster N] [--sweep SEEDS]
//       [--eigen jacobi|tridiagonal|lanczos|auto] [--graph epsilon|knn]
//       [--knn K] [--stream ROWS] [--occupancy truth|estimated|schedule]
//   auditherm serve --port P [--workers N] [--cache-budget-mb MB]
//
// Every subcommand also accepts the shared flags (--threads, --cache,
// --metrics-out, --trace); see core/cli.hpp. Observability output goes to
// stderr / the JSON file, so stdout stays byte-identical with the flags
// off — and byte-identical to a daemon response for the same request,
// because analyze renders through the same serve::AnalysisService.
//
// The CSV uses the library's channel conventions: ids < 100 are
// temperature sensors (40/41 the HVAC thermostats), 101..100+m the VAV
// flows, 110 occupancy, 111 lighting, 112 ambient, 113 supply temperature.
// Ids >= 200 are extended-range temperature sensors for synthetic
// buildings larger than the two-digit id space.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "auditherm/auditherm.hpp"
#include "auditherm/serve/scenario_codec.hpp"
#include "auditherm/serve/server.hpp"
#include "auditherm/serve/service.hpp"

using namespace auditherm;
namespace cli = auditherm::core::cli;

namespace {

/// Observability lifecycle for one CLI invocation: installs a recorder
/// when --trace / --metrics-out asked for one and writes the requested
/// outputs when the command finishes.
class ObsRun {
 public:
  explicit ObsRun(const cli::CommonOptions& common)
      : common_(common),
        recorder_(common.observability_enabled() ? new obs::Recorder
                                                 : nullptr),
        scope_(recorder_.get()) {}

  ObsRun(const ObsRun&) = delete;
  ObsRun& operator=(const ObsRun&) = delete;

  ~ObsRun() {
    if (recorder_ == nullptr) return;
    if (common_.trace) obs::write_summary(stderr, *recorder_);
    if (!common_.metrics_out.empty() &&
        !obs::write_json_file(common_.metrics_out, *recorder_)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   common_.metrics_out.c_str());
    }
  }

  [[nodiscard]] obs::Recorder* recorder() const noexcept {
    return recorder_.get();
  }

 private:
  cli::CommonOptions common_;
  std::unique_ptr<obs::Recorder> recorder_;
  obs::RecorderScope scope_;
};

cli::OptionSet simulate_options() {
  std::vector<cli::OptionSpec> specs = {
      {"out", true, false, "FILE", "write the simulated trace CSV here"},
      {"spec", true, false, "FILE",
       "scenario spec JSON (see scenario_codec.hpp); other flags override "
       "its fields"},
      {"fleet", true, false, "FILE",
       "fleet spec JSON; simulate every scenario in parallel and write "
       "per-building CSVs + manifest.json"},
      {"out-dir", true, false, "DIR",
       "fleet output directory (overrides the fleet file's out_dir)"},
      {"days", true, false, "N", "days to simulate (default 98)"},
      {"failure-days", true, false, "N",
       "days with injected sensor failures (default 34)"},
      {"dropout", true, false, "P",
       "per sensor-day wireless dropout probability (default 0.04)"},
      {"seed", true, false, "S", "simulation seed (default 1234)"},
      {"truth", true, false, "FILE",
       "noise-free truth CSV path (default <out stem>.truth.csv)"},
  };
  for (auto& spec : cli::common_options()) specs.push_back(std::move(spec));
  return cli::OptionSet("simulate", std::move(specs));
}

cli::OptionSet analyze_options() {
  std::vector<cli::OptionSpec> specs = {
      {"data", true, true, "FILE", "trace CSV to analyze"},
      {"metric", true, false, "correlation|euclidean",
       "similarity metric (default correlation)"},
      {"clusters", true, false, "K", "cluster count (0 = eigengap choice)"},
      {"order", true, false, "1|2", "model order (default 2)"},
      {"per-cluster", true, false, "N",
       "representative sensors per cluster (default 1)"},
      {"sweep", true, false, "SEEDS",
       "compare strategies over SEEDS seeds, reusing cached stages"},
      {"eigen", true, false, "jacobi|tridiagonal|lanczos|auto",
       "Laplacian eigensolver (default auto: Jacobi below 64 sensors, "
       "tridiagonal partial spectrum above, sparse Lanczos from 512)"},
      {"graph", true, false, "epsilon|knn",
       "similarity-graph sparsifier (default epsilon: the paper's "
       "quantile threshold; knn keeps each sensor's K strongest edges)"},
      {"knn", true, false, "K",
       "neighbors per sensor for --graph knn (default 8)"},
      {"stream", true, false, "ROWS",
       "append a streaming-identification section: sliding-window online "
       "refit of the reduced model over ROWS rows with drift detection "
       "(-1 = growing window, 0 = off)"},
      {"occupancy", true, false, "truth|estimated|schedule",
       "occupancy input source for identification (default truth; "
       "estimated = CO2 mass-balance inversion calibrated on the "
       "training split, schedule = two-level HVAC-schedule prior)"},
  };
  for (auto& spec : cli::common_options()) specs.push_back(std::move(spec));
  return cli::OptionSet("analyze", std::move(specs));
}

cli::OptionSet serve_options() {
  std::vector<cli::OptionSpec> specs = {
      {"port", true, true, "P",
       "listen on 127.0.0.1:P (0 = pick an ephemeral port)"},
      {"workers", true, false, "N", "request worker threads (default 2)"},
      {"cache-budget-mb", true, false, "MB",
       "stage-cache memory budget; LRU eviction above it (default 256, "
       "0 = unlimited)"},
  };
  for (auto& spec : cli::common_options()) specs.push_back(std::move(spec));
  return cli::OptionSet("serve", std::move(specs));
}

int usage() {
  std::fprintf(stderr,
               "usage: auditherm <simulate|analyze|serve> [flags]\n\n%s\n%s\n%s",
               simulate_options().usage().c_str(),
               analyze_options().usage().c_str(),
               serve_options().usage().c_str());
  return 2;
}

/// Read a whole text file (a --spec / --fleet JSON document).
std::string read_text_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("simulate: cannot read " + path);
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad()) throw std::runtime_error("simulate: read failed for " + path);
  return std::move(os).str();
}

/// Fail fast when an output path cannot be written (probing in append
/// mode creates the file without truncating an existing one), so a bad
/// --out reports a clear error *before* the simulation burns minutes
/// instead of dying on a silent partial file afterwards.
void require_writable(const std::string& path) {
  std::ofstream probe(path, std::ios::app);
  if (!probe) throw std::runtime_error("simulate: cannot write " + path);
}

/// trace.csv -> trace<suffix>; paths without the .csv extension get the
/// suffix appended.
std::string sidecar_path(const std::string& out, const std::string& suffix) {
  if (out.size() > 4 && out.ends_with(".csv")) {
    return out.substr(0, out.size() - 4) + suffix;
  }
  return out + suffix;
}

/// One scenario resolved from --spec (or defaults) with the individual
/// flags layered on top — a flag always overrides the spec file.
sim::ScenarioSpec scenario_from_args(const cli::ParsedOptions& args) {
  sim::ScenarioSpec spec;
  if (args.has("spec")) {
    spec = serve::scenario_from_json(
        serve::json::parse(read_text_file(args.require("spec"))));
  }
  if (args.has("days")) {
    spec.days = static_cast<std::size_t>(args.get_long("days", 0));
  }
  if (args.has("failure-days")) {
    spec.failure_days =
        static_cast<std::size_t>(args.get_long("failure-days", 0));
  }
  if (args.has("dropout")) {
    spec.dropout = args.get_double("dropout", spec.dropout);
  }
  if (args.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(args.get_long("seed", 0));
  }
  spec.validate();
  return spec;
}

int cmd_simulate_fleet(const cli::ParsedOptions& args) {
  for (const char* flag :
       {"out", "spec", "days", "failure-days", "dropout", "seed", "truth"}) {
    if (args.has(flag)) {
      throw cli::UsageError(std::string("--fleet cannot be combined with --") +
                            flag + " (put it in the fleet file's scenarios)");
    }
  }
  const serve::SimulateRequest request = serve::simulate_request_from_json(
      serve::json::parse(read_text_file(args.require("fleet"))));

  sim::FleetOptions options;
  options.out_dir = args.get("out-dir").value_or(request.out_dir);
  if (options.out_dir.empty()) {
    throw cli::UsageError(
        "--fleet needs an output directory: pass --out-dir or put "
        "\"out_dir\" in the fleet file");
  }

  std::printf("simulating fleet of %zu buildings...\n", request.specs.size());
  const auto outcomes = sim::run_fleet(request.specs, options);
  std::size_t total_steps = 0;
  for (const auto& outcome : outcomes) {
    total_steps += outcome.control_steps;
    std::printf("  %s: %zu samples x %zu channels, coverage %.1f%%\n",
                outcome.spec.name.c_str(), outcome.samples, outcome.channels,
                100.0 * outcome.coverage);
  }
  std::printf("wrote %s/manifest.json (%zu buildings, %zu control steps)\n",
              options.out_dir.c_str(), outcomes.size(), total_steps);
  return 0;
}

int cmd_simulate(const cli::ParsedOptions& args,
                 const cli::CommonOptions& common) {
  const ObsRun obs_run(common);
  obs::TraceSpan span("cli.simulate");

  if (args.has("fleet")) return cmd_simulate_fleet(args);

  const sim::ScenarioSpec spec = scenario_from_args(args);
  const auto out = args.require("out");
  const std::string truth_path =
      args.get("truth").value_or(sidecar_path(out, ".truth.csv"));
  const std::string meta_path = sidecar_path(out, ".meta.json");
  require_writable(out);
  require_writable(truth_path);
  require_writable(meta_path);

  std::printf("simulating %zu days (seed %llu)...\n", spec.days,
              static_cast<unsigned long long>(spec.seed));
  // A fleet of one: the CLI shares run_fleet's code path (and therefore
  // its fingerprints), which is what the bench's bitwise cross-check
  // between `simulate` and fleet runs rests on.
  auto outcomes = sim::run_fleet({spec});
  auto& outcome = outcomes.front();
  const auto& dataset = *outcome.dataset;
  timeseries::write_csv_file(out, dataset.trace);
  std::printf("wrote %s: %zu samples x %zu channels, coverage %.1f%%\n",
              out.c_str(), dataset.trace.size(),
              dataset.trace.channel_count(),
              100.0 * dataset.trace.coverage());
  timeseries::write_csv_file(truth_path, dataset.truth);
  std::printf("wrote %s (noise-free ground truth)\n", truth_path.c_str());

  outcome.trace_file = out;
  outcome.truth_file = truth_path;
  {
    std::ofstream meta(meta_path);
    meta << sim::fleet_manifest_json(outcomes);
    meta.flush();
    if (!meta) {
      throw std::runtime_error("simulate: cannot write " + meta_path);
    }
  }
  std::printf("wrote %s (run metadata)\n", meta_path.c_str());
  return 0;
}

/// Decode the analyze flags into the transport-independent request shape
/// shared with the daemon.
serve::AnalyzeRequest analyze_request_from_args(
    const cli::ParsedOptions& args) {
  serve::AnalyzeRequest request;
  request.data = args.require("data");
  if (const auto metric = args.get("metric")) request.metric = *metric;
  request.clusters = args.get_long("clusters", 0);
  request.order = args.get_long("order", 2);
  request.per_cluster = args.get_long("per-cluster", 1);
  request.sweep = args.get_long("sweep", 0);
  if (const auto eigen = args.get("eigen")) request.eigen = *eigen;
  if (const auto graph = args.get("graph")) request.graph = *graph;
  request.knn = args.get_long("knn", 0);
  request.stream = args.get_long("stream", 0);
  if (const auto occupancy = args.get("occupancy")) {
    request.occupancy = *occupancy;
  }
  return request;
}

int cmd_analyze(const cli::ParsedOptions& args,
                const cli::CommonOptions& common) {
  const ObsRun obs_run(common);
  obs::TraceSpan span("cli.analyze");

  serve::ServiceConfig service_config;
  service_config.cache_enabled = common.cache;
  serve::AnalysisService service(service_config);
  const auto report = service.analyze(analyze_request_from_args(args));
  std::fputs(report.c_str(), stdout);

  // Cache bookkeeping is diagnostics, not analysis output: it goes to
  // stderr so stdout stays byte-identical to a daemon response (whose
  // long-lived shared cache would report different totals).
  if (common.cache) {
    const auto totals = service.cache().totals();
    std::fprintf(stderr, "stage cache: %zu hits / %zu misses (%zu artifacts)\n",
                 totals.hits, totals.misses, service.cache().size());
  }
  return 0;
}

/// The running server, for the signal handler; request_stop() only
/// stores an atomic flag, so calling it from a handler is safe.
std::atomic<serve::Server*> g_server{nullptr};

void handle_stop_signal(int) {
  if (auto* server = g_server.load()) server->request_stop();
}

int cmd_serve(const cli::ParsedOptions& args,
              const cli::CommonOptions& common) {
  const long port = args.get_long("port", 0);
  if (port < 0 || port > 65535) {
    throw cli::UsageError("--port must be in [0, 65535]");
  }
  const long workers = args.get_long("workers", 2);
  if (workers < 1) throw cli::UsageError("--workers must be >= 1");
  const long budget_mb = args.get_long("cache-budget-mb", 256);
  if (budget_mb < 0) throw cli::UsageError("--cache-budget-mb must be >= 0");

  serve::ServiceConfig service_config;
  service_config.cache_enabled = common.cache;
  service_config.cache_budget.bytes =
      static_cast<std::size_t>(budget_mb) * 1024 * 1024;
  serve::AnalysisService service(service_config);

  // Server-lifetime recorder: every request thread records into it and
  // GET /metrics exports it. Written to --metrics-out on shutdown too.
  obs::Recorder recorder;
  const obs::RecorderScope scope(&recorder);

  serve::ServerConfig server_config;
  server_config.port = static_cast<std::uint16_t>(port);
  server_config.workers = static_cast<std::size_t>(workers);
  serve::Server server(server_config, service, &recorder);
  server.start();

  g_server.store(&server);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::fprintf(stderr,
               "auditherm serve: listening on 127.0.0.1:%u "
               "(%ld workers, cache budget %ld MB)\n",
               static_cast<unsigned>(server.port()), workers, budget_mb);
  server.run();
  g_server.store(nullptr);
  std::fprintf(stderr, "auditherm serve: shutdown complete\n");

  if (common.trace) obs::write_summary(stderr, recorder);
  if (!common.metrics_out.empty() &&
      !obs::write_json_file(common.metrics_out, recorder)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 common.metrics_out.c_str());
  }
  return 0;
}

using Command = std::function<int(const cli::ParsedOptions&,
                                  const cli::CommonOptions&)>;

int run_command(const cli::OptionSet& options, int argc, char** argv,
                const Command& command) {
  cli::ParsedOptions args;
  cli::CommonOptions common;
  try {
    args = options.parse(argc, argv, 2);
    common = cli::parse_common(args);
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(),
                 options.usage().c_str());
    return 2;
  }
  if (common.threads > 0) core::set_thread_count(common.threads);
  try {
    return command(args, common);
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(),
                 options.usage().c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "simulate") {
    return run_command(simulate_options(), argc, argv, cmd_simulate);
  }
  if (command == "analyze") {
    return run_command(analyze_options(), argc, argv, cmd_analyze);
  }
  if (command == "serve") {
    return run_command(serve_options(), argc, argv, cmd_serve);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return usage();
}
