file(REMOVE_RECURSE
  "CMakeFiles/test_variance_placement.dir/test_variance_placement.cpp.o"
  "CMakeFiles/test_variance_placement.dir/test_variance_placement.cpp.o.d"
  "test_variance_placement"
  "test_variance_placement.pdb"
  "test_variance_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variance_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
