#include "auditherm/timeseries/csv_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace auditherm::timeseries {

namespace {

/// Comment key persisting the grid step, so a single-row (or empty) trace
/// round-trips instead of silently reading back with step 1.
constexpr const char kStepComment[] = "step_minutes=";

/// The writer emits '\n', but real building exports are often CRLF; strip
/// one trailing '\r' so such files parse instead of feeding "20.5\r" to
/// std::stod.
void strip_trailing_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

/// std::stoll with the raw std::invalid_argument / std::out_of_range
/// replaced by a std::runtime_error naming the file position.
Minutes parse_time(const std::string& cell, std::size_t line_number) {
  try {
    std::size_t consumed = 0;
    const long long v = std::stoll(cell, &consumed);
    if (consumed != cell.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return static_cast<Minutes>(v);
  } catch (const std::exception&) {
    throw std::runtime_error("read_csv: bad time value '" + cell +
                             "' at line " + std::to_string(line_number) +
                             ", column 1");
  }
}

/// std::stod with row/column context on failure (column is the 1-based
/// CSV column, so channel c is column c + 2).
double parse_value(const std::string& cell, std::size_t line_number,
                   std::size_t column) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(cell, &consumed);
    if (consumed != cell.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("read_csv: bad sample value '" + cell +
                             "' at line " + std::to_string(line_number) +
                             ", column " + std::to_string(column));
  }
}

ChannelId parse_channel_header(const std::string& header_cell,
                               std::size_t column) {
  if (header_cell.size() < 3 || header_cell.compare(0, 2, "ch") != 0) {
    throw std::runtime_error("read_csv: bad channel header '" + header_cell +
                             "' at column " + std::to_string(column));
  }
  try {
    std::size_t consumed = 0;
    const int id = std::stoi(header_cell.substr(2), &consumed);
    if (consumed != header_cell.size() - 2) {
      throw std::invalid_argument("trailing characters");
    }
    return id;
  } catch (const std::exception&) {
    throw std::runtime_error("read_csv: bad channel header '" + header_cell +
                             "' at column " + std::to_string(column));
  }
}

}  // namespace

void write_csv(std::ostream& os, const MultiTrace& trace) {
  // The step comment makes the grid explicit; readers that predate it
  // still parse the file (comments are skipped) and infer the step.
  os << "# " << kStepComment << trace.grid().step() << '\n';
  os << "time_minutes";
  for (ChannelId id : trace.channels()) os << ",ch" << id;
  os << '\n';
  // max_digits10 (17) guarantees doubles survive the decimal round trip
  // bit-for-bit; precision(10) silently truncated them.
  os.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    os << trace.grid()[k];
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      os << ',';
      if (trace.valid(k, c)) os << trace.value(k, c);
    }
    os << '\n';
  }
}

void write_csv_file(const std::string& path, const MultiTrace& trace) {
  bool ok = false;
  {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("write_csv_file: cannot open " + path);
    write_csv(f, trace);
    f.flush();
    ok = static_cast<bool>(f);
  }
  if (!ok) {
    // A failed write leaves a truncated CSV that a later read would accept
    // as a (wrong) shorter trace — remove it so the failure is loud.
    std::remove(path.c_str());
    throw std::runtime_error("write_csv_file: write failed for " + path +
                             " (partial file removed)");
  }
}

MultiTrace read_csv(std::istream& is) {
  std::string line;
  std::size_t line_number = 0;
  Minutes declared_step = 0;  // 0 = no "# step_minutes=" comment seen

  // Header: the first non-empty, non-comment line. "# step_minutes=N"
  // comments are honored wherever they appear; other comments are skipped.
  std::vector<ChannelId> channels;
  std::size_t header_cells = 0;
  bool have_header = false;
  const auto handle_comment = [&](const std::string& comment) {
    std::size_t pos = 1;  // past '#'
    while (pos < comment.size() && comment[pos] == ' ') ++pos;
    if (comment.compare(pos, sizeof(kStepComment) - 1, kStepComment) != 0) {
      return;  // unknown comment, ignored for forward compatibility
    }
    const std::string value = comment.substr(pos + sizeof(kStepComment) - 1);
    declared_step = parse_time(value, line_number);
    if (declared_step <= 0) {
      throw std::runtime_error("read_csv: step_minutes must be positive, got " +
                               value + " at line " +
                               std::to_string(line_number));
    }
  };

  std::vector<Minutes> times;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::size_t> row_lines;  // source line of each data row
  while (std::getline(is, line)) {
    ++line_number;
    strip_trailing_cr(line);
    if (line.empty()) continue;
    if (line.front() == '#') {
      handle_comment(line);
      continue;
    }
    auto cells = split_csv_line(line);
    if (!have_header) {
      if (cells.empty() || cells[0] != "time_minutes") {
        throw std::runtime_error("read_csv: bad header, expected time_minutes");
      }
      for (std::size_t c = 1; c < cells.size(); ++c) {
        channels.push_back(parse_channel_header(cells[c], c + 1));
      }
      header_cells = cells.size();
      have_header = true;
      continue;
    }
    if (cells.size() != header_cells) {
      throw std::runtime_error("read_csv: ragged row at line " +
                               std::to_string(line_number));
    }
    times.push_back(parse_time(cells[0], line_number));
    rows.push_back(std::move(cells));
    row_lines.push_back(line_number);
  }
  if (!have_header) {
    throw std::runtime_error("read_csv: empty input");
  }

  const Minutes start = times.empty() ? 0 : times.front();
  Minutes step = declared_step > 0 ? declared_step : 1;
  if (times.size() >= 2) {
    const Minutes inferred = times[1] - times[0];
    if (inferred <= 0) {
      throw std::runtime_error("read_csv: non-increasing time");
    }
    if (declared_step > 0 && inferred != declared_step) {
      throw std::runtime_error(
          "read_csv: step_minutes=" + std::to_string(declared_step) +
          " disagrees with the data step " + std::to_string(inferred));
    }
    step = inferred;
    for (std::size_t k = 1; k < times.size(); ++k) {
      if (times[k] - times[k - 1] != step) {
        throw std::runtime_error("read_csv: non-uniform time step at line " +
                                 std::to_string(row_lines[k]));
      }
    }
  }

  MultiTrace trace(TimeGrid(start, step, rows.size()), channels);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    for (std::size_t c = 0; c < channels.size(); ++c) {
      const std::string& cell = rows[k][c + 1];
      if (!cell.empty()) {
        trace.set(k, c, parse_value(cell, row_lines[k], c + 2));
      }
    }
  }
  return trace;
}

MultiTrace read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(f);
}

}  // namespace auditherm::timeseries
