#pragma once

/// \file plant.hpp
/// Ground-truth zonal thermal plant for the auditorium.
///
/// Each sensor site is a zone node carrying three states: the local air
/// temperature T_i, a slow thermal-mass temperature M_i (furniture, slab,
/// wall lining), and a lagged forcing state Q_i modeling the air-mixing
/// delay — supply air, body heat and lighting take tens of minutes to mix
/// into a zone of this size, which is precisely the delay the paper cites
/// as the reason first-order models underfit. Nodes exchange heat by
/// turbulent air mixing with a distance kernel, receive supply air from
/// the two front outlets (fed by four VAVs), occupant and lighting heat
/// loads, and leak to ambient through the walls.
///
/// Two properties matter for the reproduction:
///  * the plant is *higher than first order by construction* (hidden mass
///    state, mixing-delay state, VAV damper lag), so the paper's finding
///    that second-order identified models beat first-order ones emerges
///    from dynamics;
///  * supply-air heat transport is bilinear (flow x temperature), so the
///    linear models of eq. 1-2 are honestly misspecified, as they were on
///    the real building.

#include <cstddef>
#include <vector>

#include "auditherm/linalg/matrix.hpp"
#include "auditherm/sim/floorplan.hpp"

namespace auditherm::sim {

/// Physical parameters of the zonal plant.
struct PlantConfig {
  double air_heat_capacity_j_k = 4.5e4;   ///< per node (~36 m^3 of air + margin)
  double mass_heat_capacity_j_k = 6.0e5;  ///< per node thermal mass
  double mass_coupling_w_k = 90.0;        ///< air <-> mass conductance
  double mixing_conductance_w_k = 70.0;   ///< peak pairwise air mixing
  double mixing_length_m = 3.5;           ///< mixing kernel length scale
  /// Per near-wall node conductance to ambient. Small: the auditorium is
  /// a basement, mostly ground-coupled and buffered by corridors.
  double wall_conductance_w_k = 6.0;
  double wall_band_m = 1.8;               ///< distance considered "near wall"
  double occupant_heat_w = 75.0;          ///< sensible heat per person
  double lighting_heat_w = 2200.0;        ///< total lighting + projectors
  double outlet_spread_m = 3.0;           ///< supply-jet spatial spread
  /// Air-mixing delay on the forcing path (HVAC, occupants, lighting):
  /// injected heat reaches a zone through a first-order lag of this time
  /// constant. Zero disables the lag (instant mixing).
  double mixing_delay_tau_s = 2400.0;
  double initial_temp_c = 20.5;

  // --- CO2 balance (well mixed: CO2 homogenizes much faster than the
  // thermal field, and the building's BMS records a single value). ------
  double room_volume_m3 = 960.0;            ///< 16 x 12 x 5 m
  double co2_outdoor_ppm = 420.0;
  /// CO2 generation per seated person (m^3/s at ppm scale: ~0.0052 L/s
  /// of pure CO2 per person = 5.2e-6 m^3/s).
  double co2_per_person_m3_s = 5.2e-6;
  double initial_co2_ppm = 420.0;
};

/// Exogenous inputs held constant across one integration step.
struct PlantInputs {
  std::vector<double> vav_flows_m3_s;  ///< one per VAV
  double supply_temp_c = 13.0;
  double occupants = 0.0;
  double lighting = 0.0;  ///< 0 or 1
  double ambient_c = 10.0;
  /// Optional per-node disturbance heat (W): local drafts, infiltration,
  /// door openings, convection plumes. Empty means zero everywhere;
  /// otherwise must match the node count. The dataset generator drives
  /// this with seeded Ornstein-Uhlenbeck processes, which is what gives
  /// nearby sensors their extra correlation beyond the shared inputs.
  std::vector<double> extra_node_heat_w;
};

/// The zonal plant. Node order equals FloorPlan::sensors() order.
class ZonalPlant {
 public:
  /// Throws std::invalid_argument on non-positive capacities/conductances.
  ZonalPlant(const FloorPlan& plan, const PlantConfig& config);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return air_temps_.size();
  }
  [[nodiscard]] const PlantConfig& config() const noexcept { return config_; }

  /// Current per-node air temperatures (deg C), in plan sensor order.
  [[nodiscard]] const linalg::Vector& air_temps() const noexcept {
    return air_temps_;
  }

  /// Current per-node thermal-mass temperatures.
  [[nodiscard]] const linalg::Vector& mass_temps() const noexcept {
    return mass_temps_;
  }

  /// Current per-node lagged forcing (W) flowing into the air.
  [[nodiscard]] const linalg::Vector& forcing_state() const noexcept {
    return forcing_;
  }

  /// Current room CO2 concentration (ppm, well mixed).
  [[nodiscard]] double co2_ppm() const noexcept { return co2_ppm_; }

  /// Air temperature of the node hosting sensor `id`.
  /// Throws std::invalid_argument for unknown ids.
  [[nodiscard]] double air_temp_of(timeseries::ChannelId id) const;

  /// Reset every state to `temp_c`.
  void initialize(double temp_c) noexcept;

  /// Advance the plant by dt seconds with inputs held constant (RK4).
  /// Throws std::invalid_argument when dt <= 0 or the VAV flow count does
  /// not match the plan.
  void step(const PlantInputs& inputs, double dt_s);

  /// Net heat (W) currently flowing into the air nodes from the HVAC for
  /// the given inputs; diagnostic for energy accounting in tests.
  [[nodiscard]] double hvac_power_w(const PlantInputs& inputs) const;

 private:
  /// d/dt of [air; mass; forcing] for given states and inputs.
  void derivative(const linalg::Vector& air, const linalg::Vector& mass,
                  const linalg::Vector& forcing, const PlantInputs& u,
                  linalg::Vector& d_air, linalg::Vector& d_mass,
                  linalg::Vector& d_forcing) const;

  FloorPlan plan_;
  PlantConfig config_;
  linalg::Matrix mixing_;                 ///< pairwise conductance (W/K)
  linalg::Vector wall_conductance_;       ///< per node (W/K)
  linalg::Matrix outlet_weights_;         ///< node x outlet, columns sum to 1
  linalg::Vector occupant_weights_;       ///< per node, sums to 1
  linalg::Vector lighting_weights_;       ///< per node, sums to 1
  std::vector<std::size_t> vav_to_outlet_;

  linalg::Vector air_temps_;
  linalg::Vector mass_temps_;
  linalg::Vector forcing_;  ///< lagged per-node forcing (W)
  double co2_ppm_ = 420.0;
};

}  // namespace auditherm::sim
