#include "auditherm/hvac/thermostat.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace auditherm::hvac {

ThermostatController::ThermostatController(const ThermostatConfig& config,
                                           Schedule schedule)
    : config_(config),
      schedule_(schedule),
      supply_temp_(config.neutral_supply_c) {
  if (config.kp <= 0.0 || config.ki < 0.0 || config.base_flow_m3_s < 0.0 ||
      config.integrator_limit < 0.0 || config.deadband_c < 0.0 ||
      config.cooling_supply_c >= config.heating_supply_c) {
    throw std::invalid_argument("ThermostatController: inconsistent config");
  }
}

void ThermostatController::update(std::vector<VavBox>& boxes,
                                  const std::vector<double>& thermostat_temps_c,
                                  timeseries::Minutes t, double dt_s) {
  if (thermostat_temps_c.empty()) {
    throw std::invalid_argument("ThermostatController: no thermostat readings");
  }
  if (dt_s <= 0.0) {
    throw std::invalid_argument("ThermostatController: dt must be > 0");
  }

  if (!schedule_.occupied_at(t)) {
    integral_ = 0.0;
    supply_temp_ = config_.neutral_supply_c;
    for (auto& box : boxes) box.command_flow(0.0);  // clamps to min flow
    return;
  }

  const double mean_temp =
      std::accumulate(thermostat_temps_c.begin(), thermostat_temps_c.end(),
                      0.0) /
      static_cast<double>(thermostat_temps_c.size());
  const double error = mean_temp - config_.setpoint_c;

  // Single-duct VAV-with-reheat program: cooling modulates airflow with
  // the excursion past the deadband; heating engages the reheat coil at
  // the base airflow (dampers do not open for heat); inside the deadband
  // tempered air flows at the base rate. Airflow therefore keeps one
  // physical meaning — "cooling effort" — which is what the thermal
  // models' h(k) input assumes.
  double excursion = 0.0;
  if (error > config_.deadband_c) {
    if (supply_temp_ != config_.cooling_supply_c) integral_ = 0.0;
    supply_temp_ = config_.cooling_supply_c;
    excursion = error - config_.deadband_c;
  } else if (error < -config_.deadband_c) {
    if (supply_temp_ != config_.heating_supply_c) integral_ = 0.0;
    supply_temp_ = config_.heating_supply_c;
  } else {
    supply_temp_ = config_.neutral_supply_c;
    integral_ = 0.0;
  }
  integral_ = std::clamp(integral_ + config_.ki * excursion * dt_s, 0.0,
                         config_.integrator_limit);
  const double flow =
      config_.base_flow_m3_s + config_.kp * excursion + integral_;
  for (auto& box : boxes) box.command_flow(flow);
}

}  // namespace auditherm::hvac
