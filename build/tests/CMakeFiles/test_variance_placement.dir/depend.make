# Empty dependencies file for test_variance_placement.
# This may be replaced when dependencies are built.
