#include "auditherm/timeseries/trace_view.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "auditherm/obs/trace_span.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::timeseries {

namespace {

void note_bytes_copied(std::size_t samples) {
  static const obs::MetricId kBytesCopied =
      obs::counter_id("timeseries.bytes_copied");
  obs::add_counter(kBytesCopied, samples * sizeof(double));
}

}  // namespace

TraceView::TraceView(const MultiTrace& trace)
    : base_(trace.values()),
      grid_(trace.grid()),
      channels_(trace.channels()),
      cols_(trace.channel_count()) {
  for (std::size_t c = 0; c < cols_.size(); ++c) cols_[c] = c;
}

std::optional<std::size_t> TraceView::channel_index(
    ChannelId id) const noexcept {
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c] == id) return c;
  }
  return std::nullopt;
}

std::size_t TraceView::require_channel(ChannelId id) const {
  if (auto c = channel_index(id)) return *c;
  throw std::invalid_argument("TraceView: unknown channel id " +
                              std::to_string(id));
}

bool TraceView::valid(std::size_t k, std::size_t c) const noexcept {
  return !std::isnan(value(k, c));
}

TraceView TraceView::select_channels(
    const std::vector<ChannelId>& ids) const {
  std::unordered_set<ChannelId> seen;
  for (ChannelId id : ids) {
    if (!seen.insert(id).second) {
      throw std::invalid_argument("TraceView: duplicate channel id " +
                                  std::to_string(id));
    }
  }
  TraceView out = *this;
  out.channels_ = ids;
  out.cols_.resize(ids.size());
  for (std::size_t c = 0; c < ids.size(); ++c) {
    out.cols_[c] = cols_[require_channel(ids[c])];
  }
  return out;
}

TraceView TraceView::slice_rows(std::size_t first, std::size_t last) const {
  if (first > last || last > size()) {
    throw std::out_of_range("TraceView::slice_rows");
  }
  TraceView out = *this;
  out.grid_ = TimeGrid(
      grid_.start() + static_cast<Minutes>(first) * grid_.step(),
      grid_.step(), last - first);
  if (rows_.empty()) {
    out.row_first_ = row_first_ + first;
  } else {
    out.rows_.assign(rows_.begin() + static_cast<std::ptrdiff_t>(first),
                     rows_.begin() + static_cast<std::ptrdiff_t>(last));
  }
  return out;
}

TraceView TraceView::filter_rows(const std::vector<bool>& keep) const {
  if (keep.size() != size()) {
    throw std::invalid_argument("TraceView::filter_rows: mask size mismatch");
  }
  TraceView out = *this;
  out.row_first_ = 0;
  out.rows_.clear();
  for (std::size_t k = 0; k < keep.size(); ++k) {
    if (keep[k]) out.rows_.push_back(source_row(k));
  }
  out.grid_ = TimeGrid(grid_.start(), grid_.step(), out.rows_.size());
  return out;
}

TraceView TraceView::with_channel(
    ChannelId id, std::shared_ptr<const linalg::Vector> column) const {
  if (channel_index(id)) {
    throw std::invalid_argument("TraceView::with_channel: channel id " +
                                std::to_string(id) + " already present");
  }
  if (!column) {
    throw std::invalid_argument("TraceView::with_channel: null column");
  }
  if (column->size() != base_.rows()) {
    throw std::invalid_argument(
        "TraceView::with_channel: column has " +
        std::to_string(column->size()) + " rows, source trace has " +
        std::to_string(base_.rows()));
  }
  TraceView out = *this;
  out.channels_.push_back(id);
  out.cols_.push_back(kDerivedColumn | out.derived_.size());
  out.derived_.push_back(std::move(column));
  return out;
}

bool TraceView::has_derived_channels() const noexcept {
  for (std::size_t col : cols_) {
    if (col & kDerivedColumn) return true;
  }
  return false;
}

double TraceView::coverage() const noexcept {
  const std::size_t total = size() * channel_count();
  if (total == 0) return 0.0;
  std::size_t present = 0;
  for (std::size_t k = 0; k < size(); ++k) {
    for (std::size_t c = 0; c < channel_count(); ++c) {
      present += valid(k, c) ? 1 : 0;
    }
  }
  return static_cast<double>(present) / static_cast<double>(total);
}

MultiTrace TraceView::materialize() const {
  MultiTrace out(grid_, channels_);
  for (std::size_t k = 0; k < size(); ++k) {
    for (std::size_t c = 0; c < channel_count(); ++c) {
      out.set(k, c, value(k, c));
    }
  }
  note_bytes_copied(size() * channel_count());
  return out;
}

std::vector<bool> rows_with_all_valid(const TraceView& trace,
                                      const std::vector<ChannelId>& ids) {
  std::vector<std::size_t> cols;
  if (ids.empty()) {
    cols.resize(trace.channel_count());
    for (std::size_t c = 0; c < cols.size(); ++c) cols[c] = c;
  } else {
    cols.reserve(ids.size());
    for (ChannelId id : ids) cols.push_back(trace.require_channel(id));
  }
  std::vector<bool> mask(trace.size(), true);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    for (std::size_t c : cols) {
      if (!trace.valid(k, c)) {
        mask[k] = false;
        break;
      }
    }
  }
  return mask;
}

linalg::Vector row_mean(const TraceView& trace,
                        const std::vector<ChannelId>& ids) {
  std::vector<std::size_t> cols;
  if (ids.empty()) {
    cols.resize(trace.channel_count());
    for (std::size_t c = 0; c < cols.size(); ++c) cols[c] = c;
  } else {
    cols.reserve(ids.size());
    for (ChannelId id : ids) cols.push_back(trace.require_channel(id));
  }
  linalg::Vector out(trace.size(), std::numeric_limits<double>::quiet_NaN());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t c : cols) {
      if (trace.valid(k, c)) {
        s += trace.value(k, c);
        ++n;
      }
    }
    if (n > 0) out[k] = s / static_cast<double>(n);
  }
  return out;
}

}  // namespace auditherm::timeseries
