// Tests for Gaussian-process mutual-information sensor placement.

#include "auditherm/selection/gp_placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <stdexcept>

namespace selection = auditherm::selection;
namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Six channels in two independent groups of three; within a group the
/// channels share a latent factor.
MultiTrace two_factor_trace(std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> n01(0.0, 1.0);
  MultiTrace trace(TimeGrid(0, 30, 300), {1, 2, 3, 4, 5, 6});
  for (std::size_t k = 0; k < 300; ++k) {
    const double f1 = n01(rng);
    const double f2 = n01(rng);
    for (std::size_t c = 0; c < 3; ++c) {
      trace.set(k, c, f1 + 0.1 * n01(rng));
    }
    for (std::size_t c = 3; c < 6; ++c) {
      trace.set(k, c, f2 + 0.1 * n01(rng));
    }
  }
  return trace;
}

}  // namespace

TEST(GpPlacement, TwoPicksCoverBothFactors) {
  const auto trace = two_factor_trace();
  const auto chosen =
      selection::gp_mutual_information_selection(trace, {1, 2, 3, 4, 5, 6}, 2);
  ASSERT_EQ(chosen.size(), 2u);
  // MI-optimal pair has one sensor per independent factor.
  const bool first_in_a = chosen[0] <= 3;
  const bool second_in_a = chosen[1] <= 3;
  EXPECT_NE(first_in_a, second_in_a);
}

TEST(GpPlacement, NoDuplicateSelections) {
  const auto trace = two_factor_trace(3);
  const auto chosen = selection::gp_mutual_information_selection(
      trace, {1, 2, 3, 4, 5, 6}, 5);
  std::set<int> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), chosen.size());
}

TEST(GpPlacement, SelectingAllReturnsAll) {
  const auto trace = two_factor_trace(5);
  const auto chosen = selection::gp_mutual_information_selection(
      trace, {1, 2, 3, 4, 5, 6}, 6);
  std::set<int> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(GpPlacement, PrefersInformativeOverNoiseChannel) {
  // Channels 1-3 share a factor; channel 4 is nearly constant (almost no
  // variance): the first pick must not be 4.
  std::mt19937_64 rng(7);
  std::normal_distribution<double> n01(0.0, 1.0);
  MultiTrace trace(TimeGrid(0, 30, 200), {1, 2, 3, 4});
  for (std::size_t k = 0; k < 200; ++k) {
    const double f = n01(rng);
    for (std::size_t c = 0; c < 3; ++c) trace.set(k, c, f + 0.05 * n01(rng));
    trace.set(k, 3, 0.001 * n01(rng));
  }
  const auto chosen =
      selection::gp_mutual_information_selection(trace, {1, 2, 3, 4}, 1);
  EXPECT_NE(chosen[0], 4);
}

TEST(GpPlacement, DeterministicAlgorithm) {
  const auto trace = two_factor_trace(9);
  const auto a = selection::gp_mutual_information_selection(
      trace, {1, 2, 3, 4, 5, 6}, 3);
  const auto b = selection::gp_mutual_information_selection(
      trace, {1, 2, 3, 4, 5, 6}, 3);
  EXPECT_EQ(a, b);
}

TEST(GpPlacement, WorksWithGappedData) {
  auto trace = two_factor_trace(11);
  for (std::size_t k = 0; k < 40; ++k) trace.clear(k, 0);
  const auto chosen = selection::gp_mutual_information_selection(
      trace, {1, 2, 3, 4, 5, 6}, 2);
  EXPECT_EQ(chosen.size(), 2u);
}

TEST(GpPlacement, Validation) {
  const auto trace = two_factor_trace(13);
  EXPECT_THROW((void)selection::gp_mutual_information_selection(
                   trace, {1, 2}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)selection::gp_mutual_information_selection(
                   trace, {1, 2}, 3),
               std::invalid_argument);
}
