# Empty dependencies file for bench_ablation_ridge.
# This may be replaced when dependencies are built.
