#pragma once

/// \file comfort.hpp
/// Fanger thermal-comfort model (PMV/PPD, ISO 7730 / ASHRAE 55).
///
/// Section V of the paper motivates clustering with the PMV model: a 2 degC
/// spatial spread moves PMV by ~0.5, enough to flip occupants from
/// "comfortable" to "slightly cool/warm". This is the full iterative Fanger
/// computation, not a lookup approximation.

namespace auditherm::hvac {

/// Environmental + personal inputs to the PMV computation.
struct ComfortInputs {
  double air_temp_c = 21.0;          ///< dry-bulb air temperature
  double mean_radiant_temp_c = 21.0; ///< mean radiant temperature
  double air_velocity_m_s = 0.10;    ///< relative air speed
  double relative_humidity = 0.50;   ///< in [0, 1]
  double metabolic_rate_met = 1.0;   ///< seated audience ~= 1.0 met
  double clothing_clo = 0.8;         ///< typical winter indoor clothing
  double external_work_met = 0.0;    ///< usually 0
};

/// PMV on the 7-point ASHRAE scale (-3 cold .. +3 hot) and the predicted
/// percentage dissatisfied.
struct ComfortResult {
  double pmv = 0.0;
  double ppd = 0.0;  ///< percent, in [5, 100]
};

/// Compute PMV/PPD via Fanger's heat-balance equations.
///
/// Throws std::invalid_argument on out-of-range inputs (humidity outside
/// [0,1], non-positive met, negative clo or velocity) and std::domain_error
/// if the clothing-surface-temperature iteration fails to converge.
[[nodiscard]] ComfortResult predicted_mean_vote(const ComfortInputs& inputs);

/// ASHRAE-55 comfort band check: |PMV| <= 0.5 (PPD <= ~10%).
[[nodiscard]] bool within_comfort_band(const ComfortResult& r) noexcept;

/// Air temperature (with mean radiant tied to it) at which PMV = 0 for
/// the given personal factors, found by bisection on [5, 40] degC.
/// Throws std::domain_error when the bracket has no sign change (extreme
/// met/clo combinations).
[[nodiscard]] double neutral_temperature(ComfortInputs inputs);

/// Convenience: PMV sensitivity to air temperature, d(PMV)/dT, by central
/// difference at the given operating point. The paper's ~0.5 PMV per 2 degC
/// claim corresponds to a sensitivity of ~0.25/K for seated occupants.
[[nodiscard]] double pmv_temperature_sensitivity(ComfortInputs inputs,
                                                 double delta_c = 0.5);

}  // namespace auditherm::hvac
