#include "auditherm/timeseries/segmentation.hpp"

#include <stdexcept>
#include <string>

namespace auditherm::timeseries {

std::vector<Segment> find_segments(const std::vector<bool>& mask,
                                   std::size_t min_length) {
  if (min_length == 0) {
    throw std::invalid_argument("find_segments: min_length must be >= 1");
  }
  std::vector<Segment> out;
  std::size_t k = 0;
  while (k < mask.size()) {
    if (!mask[k]) {
      ++k;
      continue;
    }
    std::size_t first = k;
    while (k < mask.size() && mask[k]) ++k;
    if (k - first >= min_length) out.push_back({first, k});
  }
  return out;
}

std::size_t total_length(const std::vector<Segment>& segments) {
  std::size_t n = 0;
  for (const auto& s : segments) n += s.length();
  return n;
}

std::vector<Segment> intersect_segments(const std::vector<Segment>& segments,
                                        const std::vector<bool>& mask,
                                        std::size_t min_length) {
  std::vector<bool> combined(mask.size(), false);
  for (const auto& s : segments) {
    // A segment past the mask is a caller bug (mask built for a different
    // trace); clamping would silently evaluate on truncated windows.
    if (s.last > mask.size()) {
      throw std::out_of_range(
          "intersect_segments: segment [" + std::to_string(s.first) + ", " +
          std::to_string(s.last) + ") exceeds mask size " +
          std::to_string(mask.size()));
    }
    for (std::size_t k = s.first; k < s.last; ++k) {
      combined[k] = mask[k];
    }
  }
  return find_segments(combined, min_length);
}

}  // namespace auditherm::timeseries
