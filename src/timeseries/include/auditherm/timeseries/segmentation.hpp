#pragma once

/// \file segmentation.hpp
/// Splitting a gapped trace into continuous sampling intervals.
///
/// The paper's identification objective (eq. 4) is a *piecewise* least
/// squares over "continuous sampling time intervals" [s_i, e_i]; these
/// helpers find those intervals from validity masks.

#include <cstddef>
#include <vector>

namespace auditherm::timeseries {

/// Half-open run of consecutive valid rows [first, last).
struct Segment {
  std::size_t first = 0;
  std::size_t last = 0;

  [[nodiscard]] std::size_t length() const noexcept { return last - first; }

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Maximal runs of `true` in the mask, keeping only runs of at least
/// `min_length` rows. A model transition T(k) -> T(k+1) needs 2 rows, so
/// sysid passes min_length >= 2 (second-order models need >= 3).
[[nodiscard]] std::vector<Segment> find_segments(const std::vector<bool>& mask,
                                                 std::size_t min_length = 1);

/// Total number of rows covered by segments.
[[nodiscard]] std::size_t total_length(const std::vector<Segment>& segments);

/// Intersect a run list with a second mask: rows must be in a segment AND
/// pass the mask; returns the re-segmented runs. Throws std::out_of_range
/// when a segment extends past mask.size() — that is a caller bug, not a
/// truncation request.
[[nodiscard]] std::vector<Segment> intersect_segments(
    const std::vector<Segment>& segments, const std::vector<bool>& mask,
    std::size_t min_length = 1);

}  // namespace auditherm::timeseries
