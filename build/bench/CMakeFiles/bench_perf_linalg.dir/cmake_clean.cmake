file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_linalg.dir/bench_perf_linalg.cpp.o"
  "CMakeFiles/bench_perf_linalg.dir/bench_perf_linalg.cpp.o.d"
  "bench_perf_linalg"
  "bench_perf_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
