#pragma once

/// \file decompositions.hpp
/// Matrix factorizations: Householder QR, Cholesky, partial-pivot LU, and a
/// Jacobi eigensolver for symmetric matrices.
///
/// These are the direct solvers behind the paper's convex least-squares
/// identification problem (eq. 4) and the spectral-clustering Laplacian
/// eigendecomposition (Section V).

#include <cstddef>
#include <cstdint>

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Householder QR factorization A = Q R of an m x n matrix with m >= n.
///
/// Stores the Householder reflectors compactly; Q is never formed unless
/// requested. The main consumer is least-squares solving.
class QrDecomposition {
 public:
  /// Factorize `a` (m x n, m >= n). Throws std::invalid_argument otherwise.
  explicit QrDecomposition(const Matrix& a);

  /// Minimum-residual solution x of A x = b (b has m entries).
  /// Throws std::domain_error if A is numerically rank-deficient.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Column-wise least-squares solve for multiple right-hand sides.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// The n x n upper-triangular factor R.
  [[nodiscard]] Matrix r() const;

  /// The m x n thin orthonormal factor Q.
  [[nodiscard]] Matrix thin_q() const;

  /// True when some |R_ii| is below `tol * max_j |R_jj|`.
  [[nodiscard]] bool rank_deficient(double tol = 1e-12) const noexcept;

  /// Q^T B (m x k) through the stored reflectors, without forming Q.
  /// Rows 0..n-1 are the rotated right-hand side a least-squares solve
  /// back-substitutes against; rows n..m-1 hold the residual component
  /// (their column norms are the least-squares residual norms). This is
  /// the seeding hook for UpdatableQr.
  [[nodiscard]] Matrix qt_times(const Matrix& b) const;

 private:
  void apply_reflectors(Vector& b) const;  // b := Q^T b (length m)

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  Matrix qr_;     // packed reflectors below diagonal, R on/above diagonal
  Vector rdiag_;  // diagonal of R
};

/// Relative guard below which UpdatableQr::downdate refuses to proceed: the
/// downdated diagonal must satisfy R'_ii^2 > guard * R_ii^2, bounding the
/// hyperbolic rotation's cosh at 1/sqrt(guard) = 1e4 and therefore its
/// roundoff amplification at ~1e4 * eps per event — comfortably inside the
/// streaming estimator's 1e-8 batch-agreement contract between re-anchors.
inline constexpr double kDowndateGuard = 1e-8;

/// Incrementally maintained QR factorization of a row-streamed
/// least-squares system min ||A X - B||_F.
///
/// Holds only the n x n upper-triangular factor R and the rotated
/// right-hand side U = Q^T B (n x k) — Q itself is never stored, because a
/// least-squares solve needs nothing else. append() folds one new
/// observation row into [R | U] with Givens rotations and downdate()
/// removes a previously appended row with hyperbolic rotations, both in
/// O(n (n + k)); a sliding window therefore costs O(p^2) per step instead
/// of the O(N p^2) a fresh Householder factorization per refit would
/// (sysid::StreamingEstimator is the main consumer).
///
/// Downdating is the numerically delicate half: removing a row can cancel
/// almost all of a diagonal entry, and the hyperbolic rotation would then
/// amplify roundoff without bound. downdate() detects this (kDowndateGuard)
/// and returns false WITHOUT modifying the factorization; the caller
/// re-anchors by refactorizing the surviving window rows from scratch — a
/// deterministic fallback, so every run and thread count sees the same
/// bits.
///
/// Everything here is serial and allocation-free on the hot path; results
/// depend only on the sequence of append/downdate calls.
class UpdatableQr {
 public:
  /// Empty factorization of a `cols`-parameter system with `rhs_cols`
  /// right-hand-side columns. Throws std::invalid_argument when either
  /// count is zero.
  UpdatableQr(std::size_t cols, std::size_t rhs_cols);

  /// Seed from a batch system: R and Q^T B come from one Householder
  /// QrDecomposition of `a` (m x n, m >= n; this is the re-anchoring
  /// path). Diagonal signs are canonicalized to R_ii >= 0, the convention
  /// append() preserves. Throws like QrDecomposition on bad shapes.
  UpdatableQr(const Matrix& a, const Matrix& b);

  [[nodiscard]] std::size_t cols() const noexcept { return n_; }
  [[nodiscard]] std::size_t rhs_cols() const noexcept { return k_; }
  /// Rows currently folded in (appends minus downdates).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// Fold one observation row into the factorization: `a_row` has cols()
  /// entries, `b_row` rhs_cols(). O(n (n + k)).
  void append(const double* a_row, const double* b_row);
  void append(const Vector& a_row, const Vector& b_row);

  /// Remove a previously appended row. Returns false — leaving the
  /// factorization untouched — when the downdate would be numerically
  /// unsafe (see kDowndateGuard) or no rows remain; the caller must then
  /// refactorize from the surviving rows.
  [[nodiscard]] bool downdate(const double* a_row, const double* b_row);
  [[nodiscard]] bool downdate(const Vector& a_row, const Vector& b_row);

  /// Least-squares solution X = R^{-1} U (n x k). Requires rows() >=
  /// cols(); throws std::domain_error when R is numerically
  /// rank-deficient.
  [[nodiscard]] Matrix solve() const;

  /// Ridge solution of min ||A X - B||^2 + lambda ||X||^2: folds the n
  /// rows of sqrt(lambda) I into a copy of [R | U] and back-substitutes.
  /// O(n^2 (n + k)) — still independent of the row count, and it never
  /// forms A^T A, so the condition number is not squared. lambda must be
  /// positive.
  [[nodiscard]] Matrix solve_ridge(double lambda) const;

  /// The current R factor (n x n upper triangular, R_ii >= 0).
  [[nodiscard]] const Matrix& r() const noexcept { return r_; }

  /// The rotated right-hand side U = Q^T B (n x k).
  [[nodiscard]] const Matrix& qtb() const noexcept { return u_; }

  /// Residual sum of squares per right-hand-side column, maintained
  /// incrementally (appends add, downdates subtract, clamped at zero).
  /// Feeds the streaming estimator's information-criterion reporting.
  [[nodiscard]] const Vector& residual_sumsq() const noexcept { return rss_; }

  /// Frobenius norm squared of the folded rows, sum_i ||a_i||^2 =
  /// trace(A^T A); what relative-ridge scaling needs, maintained
  /// incrementally.
  [[nodiscard]] double gram_trace() const noexcept { return gram_trace_; }

  /// True when some R_ii is below `tol * max_j R_jj`.
  [[nodiscard]] bool rank_deficient(double tol = 1e-12) const noexcept;

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  std::size_t rows_ = 0;
  Matrix r_;          // n x n, upper triangular, diagonal >= 0
  Matrix u_;          // n x k
  Vector rss_;        // per-rhs residual sum of squares
  double gram_trace_ = 0.0;
  // Scratch for append/downdate rows, the downdate's copy-then-commit
  // (downdate must not modify state on failure), and solve_ridge's folded
  // copy. Mutable so the const solve path can reuse the buffers instead of
  // allocating per call; consequently a single UpdatableQr is not safe for
  // concurrent use (matching Matrix/Vector semantics elsewhere).
  mutable Vector z_, y_;
  mutable Matrix r_scratch_, u_scratch_;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
class CholeskyDecomposition {
 public:
  /// Factorize `a`; throws std::domain_error when `a` is not (numerically)
  /// positive definite, std::invalid_argument when not square.
  explicit CholeskyDecomposition(const Matrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Lower-triangular factor L.
  [[nodiscard]] const Matrix& l() const noexcept { return l_; }

  /// log(det A) via 2 * sum(log L_ii); useful for GP marginal likelihoods.
  [[nodiscard]] double log_determinant() const noexcept;

 private:
  Matrix l_;
};

/// Partial-pivoting LU factorization P A = L U for square systems.
class LuDecomposition {
 public:
  /// Factorize square `a`; throws std::invalid_argument when not square,
  /// std::domain_error when singular to working precision.
  explicit LuDecomposition(const Matrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Determinant of A (sign-corrected for row swaps).
  [[nodiscard]] double determinant() const noexcept;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int pivot_sign_ = 1;
};

/// Eigendecomposition of a symmetric matrix.
///
/// Every solver in this header returns eigenpairs in this shape, with the
/// same normalization: eigenvalues ascending, eigenvectors orthonormal,
/// and each eigenvector's sign pinned so its largest-|component| entry
/// (lowest index on ties) is positive. The sign pin is what makes cluster
/// assignments — and any other sign-sensitive consumer — stable across
/// solver choices.
struct SymmetricEigen {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]; orthonormal
};

/// Which symmetric eigensolver to run.
///
/// kJacobi is the original cyclic-Jacobi solver: robust, simple, and the
/// cross-check reference, but it always computes the full spectrum with
/// O(n^3) work per sweep. kTridiagonal is the dense fast path (Householder
/// tridiagonalization + implicit-shift QL, with a bisection +
/// inverse-iteration partial mode). kLanczos is the sparse partial path
/// (see sparse.hpp): the Laplacian is compressed to CSR and only the
/// requested smallest pairs come out of a Lanczos iteration — the right
/// tool once the similarity graph is k-NN sparse and dense O(n^3)
/// tridiagonalization dominates. kAuto picks Jacobi below
/// kEigenAutoThreshold rows — where Jacobi's constant wins and bitwise
/// compatibility with historical results matters — the tridiagonal path
/// up to kEigenSparseThreshold, and Lanczos at or above it.
enum class EigenMethod {
  kJacobi,       ///< full-spectrum cyclic Jacobi (reference)
  kTridiagonal,  ///< Householder + QL, partial spectrum when asked
  kAuto,         ///< Jacobi / tridiagonal / Lanczos by matrix size
  kLanczos,      ///< sparse CSR Lanczos, partial spectrum only
};

/// Matrix size at which EigenMethod::kAuto switches from Jacobi to the
/// tridiagonal path. The paper's 25-27 sensor Laplacians stay on Jacobi
/// (bitwise-identical to historical results); simulated networks of 64+
/// sensors take the asymptotically cheaper solver.
inline constexpr std::size_t kEigenAutoThreshold = 64;

/// Matrix size at which EigenMethod::kAuto switches from the dense
/// tridiagonal path to sparse Lanczos. Below it the dense partial solver's
/// O(n^3/3) tridiagonalization is still cheap; above it the Laplacian of a
/// sparsified similarity graph is mostly zeros and the O(iters x nnz)
/// Lanczos iteration wins.
inline constexpr std::size_t kEigenSparseThreshold = 512;

/// Resolve kAuto against a concrete matrix size; explicit methods pass
/// through unchanged.
[[nodiscard]] constexpr EigenMethod resolve_eigen_method(
    EigenMethod method, std::size_t n) noexcept {
  if (method != EigenMethod::kAuto) return method;
  if (n < kEigenAutoThreshold) return EigenMethod::kJacobi;
  return n < kEigenSparseThreshold ? EigenMethod::kTridiagonal
                                   : EigenMethod::kLanczos;
}

/// Compute all eigenpairs of symmetric `a` by the cyclic Jacobi method.
///
/// `a` is symmetrized as (A + A^T)/2 first, so tiny asymmetries from
/// accumulated roundoff are tolerated. Throws std::invalid_argument when
/// `a` is not square. Performs up to `max_sweeps` rotation sweeps and
/// throws std::domain_error when the off-diagonal norm still exceeds the
/// tolerance afterwards (the default budget is generous).
[[nodiscard]] SymmetricEigen eigen_symmetric(const Matrix& a,
                                             std::size_t max_sweeps = 100);

/// Compute all eigenpairs of symmetric `a` via Householder
/// tridiagonalization followed by the implicit-shift QL iteration.
///
/// Same contract and output conventions as eigen_symmetric() but roughly
/// an order of magnitude faster at a few hundred rows. Throws
/// std::invalid_argument when `a` is not square, std::domain_error when QL
/// fails to converge (pathological input).
[[nodiscard]] SymmetricEigen eigen_symmetric_tridiagonal(const Matrix& a);

/// Compute only the `m` smallest eigenpairs of symmetric `a`.
///
/// Pipeline: Householder tridiagonalization, bisection on the Sturm
/// sequence for the m smallest eigenvalues, inverse iteration for the
/// tridiagonal eigenvectors (with within-cluster reorthogonalization for
/// repeated eigenvalues, e.g. a disconnected Laplacian's zero modes), and
/// a back-transform through the stored reflectors. O(n^2 (n/3 + m)) work
/// instead of Jacobi's O(n^3) per sweep — this is the solver behind
/// spectral clustering at scale, which only ever needs the k+1 smallest
/// pairs. Throws std::invalid_argument when `a` is not square, m == 0, or
/// m > n (a partial-spectrum request must fit the matrix; silently
/// clamping hid caller sizing bugs).
[[nodiscard]] SymmetricEigen eigen_symmetric_smallest(const Matrix& a,
                                                      std::size_t m);

namespace detail {

/// splitmix64-style hash to [0, 1): the deterministic start vectors shared
/// by inverse iteration and the sparse Lanczos solver — no global RNG
/// state, so every run (and every thread count) sees the same bits.
[[nodiscard]] double hash_unit(std::uint64_t x) noexcept;

/// Pin each eigenvector column's sign so the largest-|component| entry
/// (lowest index on ties) ends up positive — the normalization every
/// solver in this header and in sparse.hpp applies before returning.
void pin_column_signs(Matrix& eigenvectors);

}  // namespace detail

}  // namespace auditherm::linalg
