// Tests for the closed-loop dataset generator.

#include "auditherm/sim/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sim = auditherm::sim;
namespace ts = auditherm::timeseries;

namespace {

sim::DatasetConfig small_config() {
  sim::DatasetConfig config;
  config.days = 7;
  config.failure_days = 1;
  return config;
}

}  // namespace

TEST(Dataset, ShapesAndChannels) {
  const auto ds = sim::generate_dataset(small_config());
  // 27 sensors + 4 VAVs + occupancy + lighting + ambient + supply + co2 = 36.
  EXPECT_EQ(ds.trace.channel_count(), 36u);
  EXPECT_EQ(ds.truth.channel_count(), 27u);
  EXPECT_EQ(ds.trace.size(), 7u * 48u);  // 30-minute grid
  EXPECT_EQ(ds.trace.grid().step(), 30);
  EXPECT_EQ(ds.sensor_ids().size(), 27u);
  EXPECT_EQ(ds.wireless_ids().size(), 25u);
  EXPECT_EQ(ds.thermostat_ids().size(), 2u);
  EXPECT_EQ(ds.vav_ids(), (std::vector<int>{101, 102, 103, 104}));
  EXPECT_EQ(ds.input_ids().size(), 7u);
  EXPECT_EQ(ds.extended_input_ids().size(), 8u);
  EXPECT_EQ(ds.extended_input_ids()[4], sim::DatasetChannels::kSupplyTemp);
}

TEST(Dataset, TruthHasNoGaps) {
  const auto ds = sim::generate_dataset(small_config());
  EXPECT_DOUBLE_EQ(ds.truth.coverage(), 1.0);
}

TEST(Dataset, TruthTemperaturesPhysical) {
  const auto ds = sim::generate_dataset(small_config());
  for (std::size_t k = 0; k < ds.truth.size(); ++k) {
    for (std::size_t c = 0; c < ds.truth.channel_count(); ++c) {
      const double t = ds.truth.value(k, c);
      EXPECT_GT(t, 5.0);
      EXPECT_LT(t, 35.0);
    }
  }
}

TEST(Dataset, FailureDaysAreFullyMissing) {
  const auto ds = sim::generate_dataset(small_config());
  ASSERT_EQ(ds.failure_days.size(), 1u);
  const auto bad_day = ds.failure_days[0];
  for (std::size_t k = 0; k < ds.trace.size(); ++k) {
    if (static_cast<std::size_t>(ts::day_of(ds.trace.grid()[k])) != bad_day) {
      continue;
    }
    for (std::size_t c = 0; c < ds.trace.channel_count(); ++c) {
      EXPECT_FALSE(ds.trace.valid(k, c));
    }
  }
}

TEST(Dataset, CoverageReflectsFailures) {
  auto config = small_config();
  config.failure_days = 0;
  config.sensor_dropout_probability = 0.0;
  const auto clean = sim::generate_dataset(config);
  EXPECT_DOUBLE_EQ(clean.trace.coverage(), 1.0);

  config.failure_days = 3;
  const auto broken = sim::generate_dataset(config);
  EXPECT_NEAR(broken.trace.coverage(), 4.0 / 7.0, 0.02);
}

TEST(Dataset, DeterministicForSameSeed) {
  const auto a = sim::generate_dataset(small_config());
  const auto b = sim::generate_dataset(small_config());
  EXPECT_EQ(a.failure_days, b.failure_days);
  for (std::size_t k = 0; k < a.trace.size(); ++k) {
    for (std::size_t c = 0; c < a.trace.channel_count(); ++c) {
      EXPECT_EQ(a.trace.valid(k, c), b.trace.valid(k, c));
      if (a.trace.valid(k, c)) {
        EXPECT_DOUBLE_EQ(a.trace.value(k, c), b.trace.value(k, c));
      }
    }
  }
}

TEST(Dataset, SeedChangesData) {
  auto config = small_config();
  const auto a = sim::generate_dataset(config);
  config.seed += 1;
  const auto b = sim::generate_dataset(config);
  bool any_diff = false;
  for (std::size_t k = 0; k < a.truth.size() && !any_diff; ++k) {
    for (std::size_t c = 0; c < a.truth.channel_count(); ++c) {
      if (a.truth.value(k, c) != b.truth.value(k, c)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, ReportsTrackTruthWithinSpec) {
  auto config = small_config();
  config.failure_days = 0;
  const auto ds = sim::generate_dataset(config);
  double worst = 0.0;
  for (std::size_t k = 0; k < ds.trace.size(); ++k) {
    for (std::size_t c = 0; c < 27; ++c) {
      if (!ds.trace.valid(k, c)) continue;
      worst = std::max(worst,
                       std::abs(ds.trace.value(k, c) - ds.truth.value(k, c)));
    }
  }
  EXPECT_LT(worst, 1.0);  // noise + quantization + hold, bounded
  EXPECT_GT(worst, 0.01); // but the measurement model is actually active
}

TEST(Dataset, HvacRespondsToOccupancy) {
  // On a day with a big event, total VAV flow during the event should
  // exceed the unoccupied-mode minimum.
  auto config = small_config();
  config.failure_days = 0;
  const auto ds = sim::generate_dataset(config);
  const auto vavs = ds.vav_ids();
  double max_flow = 0.0, night_flow = 1e9;
  for (std::size_t k = 0; k < ds.trace.size(); ++k) {
    const auto t = ds.trace.grid()[k];
    double total = 0.0;
    for (auto id : vavs) {
      total += ds.trace.value(k, ds.trace.require_channel(id));
    }
    if (ds.schedule.occupied_at(t)) {
      max_flow = std::max(max_flow, total);
    } else {
      night_flow = std::min(night_flow, total);
    }
  }
  EXPECT_GT(max_flow, 4.0 * 0.05 + 0.2);
  EXPECT_NEAR(night_flow, 4.0 * 0.05, 0.1);
}

TEST(Dataset, SnapshotReturnsAllSensors) {
  const auto ds = sim::generate_dataset(small_config());
  const auto snap = sim::snapshot_at(ds, 2 * ts::kMinutesPerDay + 12 * 60);
  EXPECT_EQ(snap.size(), 27u);
  // Ids must match the plan's sensors.
  EXPECT_EQ(snap.front().first, ds.sensor_ids().front());
}

TEST(Dataset, ConfigValidation) {
  auto bad = small_config();
  bad.days = 0;
  EXPECT_THROW((void)sim::generate_dataset(bad), std::invalid_argument);
  bad = small_config();
  bad.failure_days = 100;
  EXPECT_THROW((void)sim::generate_dataset(bad), std::invalid_argument);
  bad = small_config();
  bad.sample_step = 0;
  EXPECT_THROW((void)sim::generate_dataset(bad), std::invalid_argument);
  bad = small_config();
  bad.control_dt_s = 45.0;  // not whole minutes
  EXPECT_THROW((void)sim::generate_dataset(bad), std::invalid_argument);
  bad = small_config();
  bad.control_dt_s = 540.0;  // 9 min does not divide the 30-min sample step
  EXPECT_THROW((void)sim::generate_dataset(bad), std::invalid_argument);
}

TEST(Dataset, PlanOverloadSimulatesSyntheticBuildings) {
  sim::DatasetConfig config;
  config.days = 2;
  config.failure_days = 0;
  const auto plan = sim::FloorPlan::synthetic_grid(8);
  const auto ds = sim::generate_dataset(plan, config);
  // 8 wireless + 2 thermostats sensors, 4 VAVs, 5 extra modalities.
  EXPECT_EQ(ds.truth.channel_count(), 10u);
  EXPECT_EQ(ds.trace.channel_count(), 10u + 4u + 5u);
  EXPECT_EQ(ds.plan.sensors().size(), plan.sensors().size());
}

TEST(Dataset, PlanOverloadWithPaperHallMatchesDefaultOverload) {
  sim::DatasetConfig config;
  config.days = 2;
  config.failure_days = 1;
  const auto a = sim::generate_dataset(config);
  const auto b =
      sim::generate_dataset(sim::FloorPlan::brauer_auditorium(), config);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  ASSERT_EQ(a.trace.channel_count(), b.trace.channel_count());
  for (std::size_t k = 0; k < a.trace.size(); ++k) {
    for (std::size_t c = 0; c < a.trace.channel_count(); ++c) {
      const double va = a.trace.value(k, c);
      const double vb = b.trace.value(k, c);
      if (std::isnan(va)) {
        ASSERT_TRUE(std::isnan(vb)) << k << "," << c;
      } else {
        ASSERT_EQ(va, vb) << k << "," << c;
      }
    }
  }
}

TEST(Dataset, PlanOverloadRejectsMoreVavsThanTheChannelBandHolds) {
  sim::DatasetConfig config;
  config.days = 1;
  config.failure_days = 0;
  // 320 sensors -> max(4, 320/32) = 10 VAVs > the 9-wide band 101..109.
  const auto plan = sim::FloorPlan::synthetic_grid(320);
  EXPECT_THROW((void)sim::generate_dataset(plan, config),
               std::invalid_argument);
}
