// Fig. 7: Euclidean-distance-based clustering quality at k = 3, 4, 5 —
// per-cluster CDFs of pairwise maximum temperature differences and the
// intra-cluster correlation map.
//
// Paper: at the eigengap's k=3, two clusters are tight (<1 degC for 95%
// of pairs) while one behaves like the whole-room baseline (>3 degC);
// Euclidean clusters do NOT show consistently high intra-cluster
// correlation (the metric never looked at correlation).

#include "bench_cluster_quality.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 7: Euclidean-distance clustering quality");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));

  clustering::SimilarityOptions sim_opts;
  sim_opts.metric = clustering::SimilarityMetric::kEuclidean;
  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), sim_opts);
  // One eigendecomposition, shared by the eigengap probe, the k-sweep
  // panel, and the shape check below.
  const auto spectrum = clustering::analyze_spectrum(graph.weights);
  const auto eigengap_k = spectrum.eigengap_cluster_count();

  bench::report_metric_quality(dataset, training, graph, spectrum, {3, 4, 5},
                               eigengap_k);

  // Shape check: at k=3 at least one cluster is much tighter than the
  // whole-room baseline.
  clustering::SpectralOptions spec;
  spec.cluster_count = 3;
  const auto result = clustering::spectral_cluster(graph, spectrum, spec);
  const auto overall = linalg::percentile(
      timeseries::pairwise_max_differences(training, dataset.wireless_ids()),
      95.0);
  double tightest = 1e9;
  for (const auto& cluster : result.clusters()) {
    const auto diffs = timeseries::pairwise_max_differences(training, cluster);
    if (!diffs.empty()) {
      tightest = std::min(tightest, linalg::percentile(diffs, 95.0));
    }
  }
  std::printf("\nshape check: tightest k=3 cluster p95 (%.2f) well below the "
              "all-sensor p95 (%.2f): %s\n",
              tightest, overall, tightest < 0.7 * overall ? "yes" : "NO");
  return 0;
}
