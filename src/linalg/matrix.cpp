#include "auditherm/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::linalg {

namespace {

// Tile edge for the cache-blocked dense kernels: 64x64 doubles = 32 KiB,
// so one tile of each operand fits in L1/L2 together. The block size is a
// compile-time constant — never derived from the thread count — and every
// output element still accumulates its terms in ascending-k order inside
// and across tiles, so blocked results are bitwise identical to the naive
// loops at any thread count.
constexpr std::size_t kDenseBlock = 64;

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t k) {
  Matrix m(k, k);
  for (std::size_t i = 0; i < k; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::column(const Vector& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

Matrix Matrix::row(const Vector& v) {
  Matrix m(1, v.size());
  for (std::size_t j = 0; j < v.size(); ++j) m(0, j) = v[j];
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  if (i >= rows_ || j >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(i, j);
}

Vector Matrix::row_vector(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("Matrix::row_vector");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols_));
}

Vector Matrix::col_vector(std::size_t j) const {
  if (j >= cols_) throw std::out_of_range("Matrix::col_vector");
  Vector v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::set_row(std::size_t i, const Vector& v) {
  if (i >= rows_) throw std::out_of_range("Matrix::set_row");
  if (v.size() != cols_) throw std::invalid_argument("Matrix::set_row size");
  std::copy(v.begin(), v.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(i * cols_));
}

void Matrix::set_col(std::size_t j, const Vector& v) {
  if (j >= cols_) throw std::out_of_range("Matrix::set_col");
  if (v.size() != rows_) throw std::invalid_argument("Matrix::set_col size");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Tile the copy so both the row-major read and the column-strided write
  // stay within a cache-resident kDenseBlock-square panel.
  for (std::size_t ib = 0; ib < rows_; ib += kDenseBlock) {
    const std::size_t iend = std::min(ib + kDenseBlock, rows_);
    for (std::size_t jb = 0; jb < cols_; jb += kDenseBlock) {
      const std::size_t jend = std::min(jb + kDenseBlock, cols_);
      for (std::size_t i = ib; i < iend; ++i)
        for (std::size_t j = jb; j < jend; ++j) t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  if (r0 + nr > rows_ || c0 + nc > cols_)
    throw std::out_of_range("Matrix::block");
  Matrix b(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    const double* src = data_.data() + (r0 + i) * cols_ + c0;
    std::copy(src, src + nc,
              b.data_.begin() + static_cast<std::ptrdiff_t>(i * nc));
  }
  return b;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  if (r0 + b.rows() > rows_ || c0 + b.cols() > cols_)
    throw std::out_of_range("Matrix::set_block");
  for (std::size_t i = 0; i < b.rows(); ++i) {
    const double* src = b.data_.data() + i * b.cols_;
    std::copy(src, src + b.cols_,
              data_.begin() +
                  static_cast<std::ptrdiff_t>((r0 + i) * cols_ + c0));
  }
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator+= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator-= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("Matrix product: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // Parallel over row chunks, cache-blocked inside each chunk: a
  // kDenseBlock-square tile of b is reused across every row of the chunk
  // before moving on. Each c(i,j) still accumulates over ascending k (kb
  // tiles ascend, k ascends within a tile, j never revisits a tile) with
  // the same zero-skip as the naive (i,k,j) loop, so the product is
  // bitwise identical to it — and hence thread-count independent.
  core::parallel_for_chunks(
      0, a.rows(), core::grain_for_cost(a.cols() * b.cols()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t kb = 0; kb < a.cols(); kb += kDenseBlock) {
          const std::size_t kend = std::min(kb + kDenseBlock, a.cols());
          for (std::size_t jb = 0; jb < b.cols(); jb += kDenseBlock) {
            const std::size_t jend = std::min(jb + kDenseBlock, b.cols());
            for (std::size_t i = lo; i < hi; ++i) {
              for (std::size_t k = kb; k < kend; ++k) {
                const double aik = a(i, k);
                if (aik == 0.0) continue;
                for (std::size_t j = jb; j < jend; ++j)
                  c(i, j) += aik * b(k, j);
              }
            }
          }
        }
      });
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size())
    throw std::invalid_argument("Matrix-vector product: dimension mismatch");
  static const obs::MetricId kMatvecCalls =
      obs::counter_id("linalg.matvec_calls");
  obs::add_counter(kMatvecCalls);
  Vector y(a.rows(), 0.0);
  // Parallel over rows; each row is a serial ascending-j dot product into
  // its own output slot, so the result is bitwise identical to the serial
  // loop at any thread count. A counter (not a span) tracks call volume:
  // sysid's hot loops issue thousands of matvecs per fit.
  core::parallel_for(0, a.rows(), core::grain_for_cost(a.cols()),
                     [&](std::size_t i) {
                       double s = 0.0;
                       for (std::size_t j = 0; j < a.cols(); ++j)
                         s += a(i, j) * x[j];
                       y[i] = s;
                     });
  return y;
}

Matrix gram(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("gram: row count mismatch");
  Matrix c(a.cols(), b.cols());
  // Parallel over chunks of output rows (columns of a), cache-blocked
  // like operator*: tiles of b are reused across the chunk, and each
  // c(i,j) sums a(k,i) * b(k,j) over globally ascending k with the
  // original zero-skip, so every element sees an identical sequence of
  // partial sums at any thread count.
  core::parallel_for_chunks(
      0, a.cols(), core::grain_for_cost(a.rows() * b.cols()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t kb = 0; kb < a.rows(); kb += kDenseBlock) {
          const std::size_t kend = std::min(kb + kDenseBlock, a.rows());
          for (std::size_t jb = 0; jb < b.cols(); jb += kDenseBlock) {
            const std::size_t jend = std::min(jb + kDenseBlock, b.cols());
            for (std::size_t i = lo; i < hi; ++i) {
              for (std::size_t k = kb; k < kend; ++k) {
                const double aki = a(k, i);
                if (aki == 0.0) continue;
                for (std::size_t j = jb; j < jend; ++j)
                  c(i, j) += aki * b(k, j);
              }
            }
          }
        }
      });
  return c;
}

Matrix outer_product(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("outer_product: column count mismatch");
  Matrix c(a.rows(), b.rows());
  // Blocked over (j, k) tiles so b's rows are revisited while hot. The
  // running sum for each c(i,j) is carried in the output element across
  // k tiles and extended term by term in ascending k — the identical
  // fold ((0 + t0) + t1) + ... the naive per-element dot produced, never
  // a per-tile partial that would reassociate the sum.
  core::parallel_for_chunks(
      0, a.rows(), core::grain_for_cost(a.cols() * b.rows()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t kb = 0; kb < a.cols(); kb += kDenseBlock) {
          const std::size_t kend = std::min(kb + kDenseBlock, a.cols());
          for (std::size_t jb = 0; jb < b.rows(); jb += kDenseBlock) {
            const std::size_t jend = std::min(jb + kDenseBlock, b.rows());
            for (std::size_t i = lo; i < hi; ++i) {
              for (std::size_t j = jb; j < jend; ++j) {
                double acc = c(i, j);
                for (std::size_t k = kb; k < kend; ++k)
                  acc += a(i, k) * b(j, k);
                c(i, j) = acc;
              }
            }
          }
        }
      });
  return c;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (std::abs(a(i, j) - b(i, j)) > tol) return false;
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "[" << m.rows() << "x" << m.cols() << "]\n";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      os << (j == 0 ? "" : " ") << m(i, j);
    }
    os << '\n';
  }
  return os;
}

}  // namespace auditherm::linalg
