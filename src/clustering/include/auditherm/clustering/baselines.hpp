#pragma once

/// \file baselines.hpp
/// Traditional clustering baselines the paper compares spectral clustering
/// against in spirit ("compared to the traditional clustering algorithms
/// such as k-means or single linkage, spectral clustering can derive
/// higher quality results"): direct k-means on the sensor traces and
/// single-linkage agglomerative clustering on the similarity graph.

#include "auditherm/clustering/kmeans.hpp"
#include "auditherm/clustering/similarity.hpp"
#include "auditherm/clustering/spectral.hpp"

namespace auditherm::clustering {

/// Direct k-means on per-sensor feature vectors.
///
/// Each sensor's feature vector is its (gap-filled by channel mean,
/// standardized per row) trace over the training window — clustering in
/// signal space rather than on the graph spectrum. Throws
/// std::invalid_argument on empty channels or k outside [1, #channels].
[[nodiscard]] ClusteringResult kmeans_trace_cluster(
    const timeseries::TraceView& trace,
    const std::vector<timeseries::ChannelId>& channels, std::size_t k,
    const KMeansOptions& options = {});

/// Single-linkage agglomerative clustering on a similarity graph: start
/// from singletons and repeatedly merge the pair of clusters joined by the
/// strongest remaining edge, until k clusters remain. The classic
/// "chaining" failure mode (one giant cluster plus singletons) is exactly
/// what the paper's comparison alludes to. Throws std::invalid_argument
/// when k is outside [1, #vertices].
[[nodiscard]] ClusteringResult single_linkage_cluster(
    const SimilarityGraph& graph, std::size_t k);

}  // namespace auditherm::clustering
