file(REMOVE_RECURSE
  "libauditherm_core.a"
)
