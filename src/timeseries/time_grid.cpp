#include "auditherm/timeseries/time_grid.hpp"

#include <stdexcept>

namespace auditherm::timeseries {

std::string format_time(Minutes t) {
  const auto day = day_of(t);
  const auto mod = minute_of_day(t);
  const auto hh = mod / kMinutesPerHour;
  const auto mm = mod % kMinutesPerHour;
  std::string s = "d" + std::to_string(day) + " ";
  if (hh < 10) s += '0';
  s += std::to_string(hh);
  s += ':';
  if (mm < 10) s += '0';
  s += std::to_string(mm);
  return s;
}

TimeGrid::TimeGrid(Minutes start, Minutes step, std::size_t count)
    : start_(start), step_(step), count_(count) {
  if (step <= 0) throw std::invalid_argument("TimeGrid: step must be > 0");
}

Minutes TimeGrid::at(std::size_t k) const {
  if (k >= count_) throw std::out_of_range("TimeGrid::at");
  return (*this)[k];
}

std::size_t TimeGrid::index_at_or_after(Minutes t) const noexcept {
  if (count_ == 0 || t <= start_) return 0;
  const Minutes offset = t - start_;
  auto idx = static_cast<std::size_t>((offset + step_ - 1) / step_);
  return idx > count_ ? count_ : idx;
}

}  // namespace auditherm::timeseries
