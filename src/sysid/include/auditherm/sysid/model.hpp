#pragma once

/// \file model.hpp
/// The paper's thermal model structures (Section IV.A).
///
/// First order (eq. 1):   T(k+1) = A T(k) + B u(k)
/// Second order (eq. 2):  T(k+1) = A1 T(k) + A2 dT(k) + B u(k),
///                        dT(k) = T(k) - T(k-1)
///
/// where T stacks the sensor temperatures and u = [h; o; l; w] stacks the
/// VAV airflows, occupant count, lighting state and ambient temperature.
/// The second-order form is eq. 2 with the structural bottom block
/// (dT(k+1) = T(k+1) - T(k)) left implicit.

#include <vector>

#include "auditherm/linalg/matrix.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::sysid {

/// Dynamic order of the identified model.
enum class ModelOrder {
  kFirst,
  kSecond,
};

/// An identified linear thermal model over named channels.
///
/// Invariants (checked at construction): a is p x p; a2 is p x p for
/// second-order models and empty otherwise; b is p x q with q ==
/// input_channels.size() and p == state_channels.size().
class ThermalModel {
 public:
  ThermalModel() = default;

  /// Assemble a model; throws std::invalid_argument on shape violations.
  ThermalModel(ModelOrder order, linalg::Matrix a, linalg::Matrix a2,
               linalg::Matrix b,
               std::vector<timeseries::ChannelId> state_channels,
               std::vector<timeseries::ChannelId> input_channels);

  [[nodiscard]] ModelOrder order() const noexcept { return order_; }
  [[nodiscard]] std::size_t state_count() const noexcept {
    return state_channels_.size();
  }
  [[nodiscard]] std::size_t input_count() const noexcept {
    return input_channels_.size();
  }
  [[nodiscard]] const linalg::Matrix& a() const noexcept { return a_; }
  [[nodiscard]] const linalg::Matrix& a2() const noexcept { return a2_; }
  [[nodiscard]] const linalg::Matrix& b() const noexcept { return b_; }
  [[nodiscard]] const std::vector<timeseries::ChannelId>& state_channels()
      const noexcept {
    return state_channels_;
  }
  [[nodiscard]] const std::vector<timeseries::ChannelId>& input_channels()
      const noexcept {
    return input_channels_;
  }

  /// One-step prediction. `delta` is T(k) - T(k-1) and is ignored by
  /// first-order models. Throws std::invalid_argument on size mismatches.
  [[nodiscard]] linalg::Vector predict_next(const linalg::Vector& temps,
                                            const linalg::Vector& delta,
                                            const linalg::Vector& inputs) const;

  /// Multi-step open-loop simulation.
  ///
  /// `initial` is T at step 0; `initial_delta` is T(0) - T(-1) (pass zeros
  /// when unknown; first-order models ignore it). `inputs` is N x q, one
  /// row per step. Returns an N x p matrix whose row k is the prediction
  /// of T(k+1) after applying input row k (i.e., row 0 is one step ahead).
  [[nodiscard]] linalg::Matrix simulate(const linalg::Vector& initial,
                                        const linalg::Vector& initial_delta,
                                        const linalg::Matrix& inputs) const;

  /// Spectral radius of the (augmented, for second order) state-transition
  /// matrix; < 1 means the identified dynamics are asymptotically stable.
  [[nodiscard]] double spectral_radius_bound() const;

 private:
  ModelOrder order_ = ModelOrder::kFirst;
  linalg::Matrix a_;
  linalg::Matrix a2_;
  linalg::Matrix b_;
  std::vector<timeseries::ChannelId> state_channels_;
  std::vector<timeseries::ChannelId> input_channels_;
};

}  // namespace auditherm::sysid
