
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/baselines.cpp" "src/clustering/CMakeFiles/auditherm_clustering.dir/baselines.cpp.o" "gcc" "src/clustering/CMakeFiles/auditherm_clustering.dir/baselines.cpp.o.d"
  "/root/repo/src/clustering/kmeans.cpp" "src/clustering/CMakeFiles/auditherm_clustering.dir/kmeans.cpp.o" "gcc" "src/clustering/CMakeFiles/auditherm_clustering.dir/kmeans.cpp.o.d"
  "/root/repo/src/clustering/similarity.cpp" "src/clustering/CMakeFiles/auditherm_clustering.dir/similarity.cpp.o" "gcc" "src/clustering/CMakeFiles/auditherm_clustering.dir/similarity.cpp.o.d"
  "/root/repo/src/clustering/spectral.cpp" "src/clustering/CMakeFiles/auditherm_clustering.dir/spectral.cpp.o" "gcc" "src/clustering/CMakeFiles/auditherm_clustering.dir/spectral.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/auditherm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auditherm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
