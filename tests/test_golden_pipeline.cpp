// Golden end-to-end regression test on the standard 98-day dataset (the
// paper's Jan 31 - May 8 trace; 98 simulated days, ~34 failure days).
//
// The numbers pinned here are the repository's reproduced results for the
// paper's headline tables: the eigengap cluster count, the SMS/SRS/RS
// 99th-percentile cluster-mean errors (Table II), and the Table-I-style
// second-order fit residuals. Tolerances are wide enough for cross-platform
// libm variation but tight enough that a silent behavioral change in
// clustering, selection, identification, or evaluation fails loudly.
// If a deliberate algorithm change moves a number, update the constant in
// the same commit and say why.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "auditherm/core/pipeline.hpp"
#include "auditherm/sim/dataset.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/evaluation.hpp"

namespace core = auditherm::core;
namespace sim = auditherm::sim;
namespace hvac = auditherm::hvac;
namespace sysid = auditherm::sysid;
namespace timeseries = auditherm::timeseries;

namespace {

/// The standard evaluation dataset, shared across all golden tests
/// (generation is the expensive part).
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 98;
    config.failure_days = 34;
    return sim::generate_dataset(config);
  }();
  return ds;
}

core::DataSplit standard_split(hvac::Mode mode = hvac::Mode::kOccupied) {
  auto required = dataset().sensor_ids();
  const auto inputs = dataset().input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  return core::split_dataset(dataset().trace, required, dataset().schedule,
                             mode);
}

core::PipelineResult run_strategy(core::SelectionStrategy strategy) {
  core::PipelineConfig config;
  config.strategy = strategy;
  const core::ThermalModelingPipeline pipeline(config);
  return pipeline.run(
      dataset().trace, dataset().schedule, standard_split(),
      dataset().wireless_ids(), dataset().input_ids(),
      core::RunOptions{.thermostat_ids = dataset().thermostat_ids()});
}

/// Table-I-style fit residual: 90th-percentile per-sensor RMS of the
/// full-network model's open-loop prediction on validation days.
double fit_residual_p90(hvac::Mode mode, sysid::ModelOrder order) {
  const auto split = standard_split(mode);
  const auto mode_mask =
      dataset().schedule.mode_mask(dataset().trace.grid(), mode);
  sysid::ModelEstimator estimator(dataset().sensor_ids(),
                                  dataset().input_ids(), order);
  const auto model = estimator.fit(
      dataset().trace, core::and_masks(split.train_mask, mode_mask));
  sysid::EvaluationOptions opts;
  opts.horizon_samples = mode == hvac::Mode::kOccupied ? 27 : 18;
  auto mask = core::and_masks(split.validation_mask, mode_mask);
  mask = core::and_masks(mask, timeseries::rows_with_all_valid(
                                   dataset().trace, dataset().input_ids()));
  const auto windows = timeseries::find_segments(mask, 2);
  const auto eval =
      sysid::evaluate_prediction(model, dataset().trace, windows, opts);
  return eval.channel_rms_percentile(90.0);
}

}  // namespace

TEST(GoldenPipeline, EigengapFindsTheTwoZoneSplit) {
  const auto result = run_strategy(core::SelectionStrategy::kStratifiedNearMean);
  // The paper's log-eigengap rule picks k = 2 (front vs back zone).
  EXPECT_EQ(result.clustering.cluster_count, 2u);

  // With 34 failure days the correlation clustering puts 21 of the 25
  // wireless sensors on their ground-truth side of the front/back split
  // (boundary sensors land with the other zone). Pinned as a floor so a
  // regression in similarity or spectral embedding shows up.
  const std::vector<int> front{3, 6, 7, 8, 13, 14, 17, 23, 28, 33, 38};
  const auto front_label = result.clustering.cluster_of(3);
  std::size_t agree = 0;
  for (int id : dataset().wireless_ids()) {
    const bool expect_front =
        std::find(front.begin(), front.end(), id) != front.end();
    const bool is_front = result.clustering.cluster_of(id) == front_label;
    agree += (expect_front == is_front) ? 1 : 0;
  }
  EXPECT_GE(agree, 20u) << "only " << agree << "/25 sensors on the expected "
                        << "side of the front/back split";
}

TEST(GoldenPipeline, SelectionStrategyErrorsStayPinned) {
  // Reproduced Table II ordering: SMS beats the random baselines.
  const double sms =
      run_strategy(core::SelectionStrategy::kStratifiedNearMean)
          .cluster_mean_errors.percentile(99.0);
  const double srs = run_strategy(core::SelectionStrategy::kStratifiedRandom)
                         .cluster_mean_errors.percentile(99.0);
  const double rs = run_strategy(core::SelectionStrategy::kSimpleRandom)
                        .cluster_mean_errors.percentile(99.0);

  // Golden values from the reference run (degC). Tolerances allow libm
  // variation across platforms but catch algorithmic drift.
  EXPECT_NEAR(sms, 2.017, 0.15);
  EXPECT_NEAR(srs, 3.025, 0.20);
  EXPECT_NEAR(rs, 2.298, 0.20);
  EXPECT_LT(sms, srs);
  EXPECT_LT(sms, rs);
}

TEST(GoldenPipeline, ReducedModelResidualsStayPinned) {
  const auto result = run_strategy(core::SelectionStrategy::kStratifiedNearMean);
  EXPECT_NEAR(result.reduced_eval.pooled_rms, 0.648, 0.08);
  EXPECT_GT(result.reduced_eval.window_count, 10u);
}

TEST(GoldenPipeline, TableOneFitResidualsStayPinned) {
  const double occ2 =
      fit_residual_p90(hvac::Mode::kOccupied, sysid::ModelOrder::kSecond);
  const double unocc2 =
      fit_residual_p90(hvac::Mode::kUnoccupied, sysid::ModelOrder::kSecond);
  EXPECT_NEAR(occ2, 0.389, 0.05);
  EXPECT_NEAR(unocc2, 0.181, 0.05);
  // Paper shape: the unoccupied night is easier to predict.
  EXPECT_LT(unocc2, occ2);
}
