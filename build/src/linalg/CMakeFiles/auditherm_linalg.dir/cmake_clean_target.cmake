file(REMOVE_RECURSE
  "libauditherm_linalg.a"
)
