// Tests for the auditorium floor plan.

#include "auditherm/sim/floorplan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace sim = auditherm::sim;

TEST(FloorPlan, BrauerHasPapersSensorComplement) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  EXPECT_EQ(plan.sensors().size(), 27u);     // 25 wireless + 2 thermostats
  EXPECT_EQ(plan.wireless_ids().size(), 25u);
  EXPECT_EQ(plan.thermostat_ids(), (std::vector<int>{40, 41}));
  EXPECT_EQ(plan.vav_count(), 4u);
  EXPECT_EQ(plan.air_outlets().size(), 2u);
}

TEST(FloorPlan, BrauerSensorIdsMatchPaper) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  const std::vector<int> expected{1,  3,  6,  7,  8,  12, 13, 14, 15,
                                  16, 17, 18, 19, 20, 23, 26, 27, 28,
                                  30, 31, 32, 33, 34, 37, 38};
  auto ids = plan.wireless_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, expected);
}

TEST(FloorPlan, ThermostatsAreOnTheFrontWall) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  for (int id : plan.thermostat_ids()) {
    const auto& site = plan.site(id);
    EXPECT_TRUE(site.is_thermostat);
    EXPECT_LT(site.position.y, 2.0);  // front
  }
}

TEST(FloorPlan, DiffusersSpanTheRoomAndFavorTheFront) {
  // The paper: "four VAVs but only two air outlets which span the entire
  // auditorium". Both diffusers must be long, and neither reaches the
  // deep back rows (which is why the back runs warm).
  const auto plan = sim::FloorPlan::brauer_auditorium();
  for (const auto& outlet : plan.air_outlets()) {
    const double length = sim::distance(outlet.start, outlet.end);
    EXPECT_GT(length, 0.7 * plan.width());
    EXPECT_LT(outlet.start.y, 0.6 * plan.depth());
    EXPECT_LT(outlet.end.y, 0.6 * plan.depth());
  }
}

TEST(FloorPlan, DiffuserDistance) {
  const sim::Diffuser d{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(sim::distance(sim::Position{5.0, 3.0}, d), 3.0);
  EXPECT_DOUBLE_EQ(sim::distance(sim::Position{-4.0, 3.0}, d), 5.0);
  EXPECT_DOUBLE_EQ(sim::distance(sim::Position{13.0, 4.0}, d), 5.0);
  const sim::Diffuser point{{2.0, 2.0}, {2.0, 2.0}};
  EXPECT_DOUBLE_EQ(sim::distance(sim::Position{2.0, 5.0}, point), 3.0);
}

TEST(FloorPlan, Sensor27SitsDeepInSeating) {
  // The paper's warmest sensor in Fig. 2 sits in the back seat block.
  const auto plan = sim::FloorPlan::brauer_auditorium();
  const auto& s27 = plan.site(27);
  EXPECT_TRUE(plan.in_seating(s27.position));
  EXPECT_GT(s27.position.y, 0.8 * plan.depth() - 2.0);
}

TEST(FloorPlan, SiteLookupThrowsOnUnknownId) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  EXPECT_THROW((void)plan.site(99), std::invalid_argument);
}

TEST(FloorPlan, WallDistance) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  EXPECT_DOUBLE_EQ(plan.wall_distance({0.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(plan.wall_distance({8.0, 6.0}), 6.0);
  EXPECT_DOUBLE_EQ(plan.wall_distance({15.0, 6.0}), 1.0);
}

TEST(FloorPlan, SeatingBand) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  EXPECT_FALSE(plan.in_seating({8.0, 1.0}));   // podium area
  EXPECT_TRUE(plan.in_seating({8.0, 8.0}));    // seat rows
}

TEST(FloorPlan, DistanceHelper) {
  EXPECT_DOUBLE_EQ(
      sim::distance(sim::Position{0.0, 0.0}, sim::Position{3.0, 4.0}), 5.0);
}

TEST(FloorPlan, CustomPlanValidation) {
  std::vector<sim::SensorSite> sensors{{1, {1.0, 1.0}, false}};
  std::vector<sim::Diffuser> outlets{{{1.0, 0.5}, {9.0, 0.5}}};
  // Valid plan constructs.
  EXPECT_NO_THROW(sim::FloorPlan(10.0, 8.0, sensors, outlets, 2, 2.0, 7.0));
  // Bad dimension.
  EXPECT_THROW(sim::FloorPlan(0.0, 8.0, sensors, outlets, 2, 2.0, 7.0),
               std::invalid_argument);
  // Empty sensors.
  EXPECT_THROW(sim::FloorPlan(10.0, 8.0, {}, outlets, 2, 2.0, 7.0),
               std::invalid_argument);
  // Duplicate ids.
  std::vector<sim::SensorSite> dupes{{1, {1.0, 1.0}, false},
                                     {1, {2.0, 2.0}, false}};
  EXPECT_THROW(sim::FloorPlan(10.0, 8.0, dupes, outlets, 2, 2.0, 7.0),
               std::invalid_argument);
  // Sensor outside the room.
  std::vector<sim::SensorSite> outside{{1, {11.0, 1.0}, false}};
  EXPECT_THROW(sim::FloorPlan(10.0, 8.0, outside, outlets, 2, 2.0, 7.0),
               std::invalid_argument);
  // Outlet outside the room.
  std::vector<sim::Diffuser> bad_outlets{{{-1.0, 0.0}, {5.0, 0.5}}};
  EXPECT_THROW(sim::FloorPlan(10.0, 8.0, sensors, bad_outlets, 2, 2.0, 7.0),
               std::invalid_argument);
  // No VAVs.
  EXPECT_THROW(sim::FloorPlan(10.0, 8.0, sensors, outlets, 0, 2.0, 7.0),
               std::invalid_argument);
  // Inverted seating band.
  EXPECT_THROW(sim::FloorPlan(10.0, 8.0, sensors, outlets, 2, 7.0, 2.0),
               std::invalid_argument);
}

TEST(FloorPlan, SyntheticGridScalesToBenchSizes) {
  for (std::size_t count : {1u, 25u, 128u, 256u, 1024u}) {
    const auto plan = sim::FloorPlan::synthetic_grid(count);
    EXPECT_EQ(plan.wireless_ids().size(), count) << "count=" << count;
    EXPECT_EQ(plan.thermostat_ids(), (std::vector<int>{40, 41}))
        << "count=" << count;
    EXPECT_EQ(plan.sensors().size(), count + 2) << "count=" << count;
    EXPECT_EQ(plan.air_outlets().size(), 2u);
    EXPECT_GE(plan.vav_count(), 4u);
    // Constructor validation already guarantees every site is in-room and
    // ids are unique; spot-check the grid pitch keeps neighbors 2 m apart.
    const auto& sensors = plan.sensors();
    if (count >= 2) {
      EXPECT_NEAR(sim::distance(sensors[0].position, sensors[1].position),
                  2.0, 1e-12);
    }
  }
}

TEST(FloorPlan, SyntheticGridSkipsThermostatIds) {
  // 64 wireless ids must skip 40/41 (reserved for the wall thermostats).
  const auto plan = sim::FloorPlan::synthetic_grid(64);
  const auto ids = plan.wireless_ids();
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 40), 0);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), 41), 0);
  EXPECT_EQ(ids.front(), 1);
  EXPECT_EQ(ids.back(), 66);  // two ids skipped along the way
}

TEST(FloorPlan, SyntheticGridRejectsZeroSensors) {
  EXPECT_THROW((void)sim::FloorPlan::synthetic_grid(0),
               std::invalid_argument);
}

TEST(FloorPlan, SyntheticGridVavCountScalesWithArea) {
  EXPECT_EQ(sim::FloorPlan::synthetic_grid(64).vav_count(), 4u);
  EXPECT_EQ(sim::FloorPlan::synthetic_grid(256).vav_count(), 8u);
  EXPECT_EQ(sim::FloorPlan::synthetic_grid(1024).vav_count(), 32u);
}

TEST(FloorPlan, CampusSensorCountsAndZoneLabels) {
  const auto campus = sim::FloorPlan::synthetic_campus(4, 32);
  EXPECT_EQ(campus.wireless_ids().size(), 128u);
  EXPECT_EQ(campus.thermostat_ids(), (std::vector<int>{40, 41}));
  EXPECT_EQ(campus.sensors().size(), 130u);
  EXPECT_EQ(campus.zone_count(), 4u);
  EXPECT_EQ(campus.air_outlets().size(), 8u);  // two diffusers per hall
  EXPECT_EQ(campus.vav_count(), 4u);           // 128 / 32

  // Wireless ids fill each hall in order: 32 sensors per zone, hall
  // boundaries where id ranges roll over (ids skip 40/41).
  const auto ids = campus.wireless_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(campus.zone_of(ids[i]), i / 32) << "sensor index " << i;
  }
  // Thermostats: campus front corners, zones 0 and hall_count - 1.
  EXPECT_EQ(campus.zone_of(40), 0u);
  EXPECT_EQ(campus.zone_of(41), 3u);
}

TEST(FloorPlan, CampusHallsAreSpatiallyDisjoint) {
  const auto campus = sim::FloorPlan::synthetic_campus(3, 16);
  // Per-hall bounding boxes along x must not overlap: the corridor keeps
  // the thermal zones apart.
  double min_x[3], max_x[3];
  for (std::size_t h = 0; h < 3; ++h) {
    min_x[h] = campus.width();
    max_x[h] = 0.0;
  }
  for (const auto& s : campus.sensors()) {
    if (s.is_thermostat) continue;
    min_x[s.zone] = std::min(min_x[s.zone], s.position.x);
    max_x[s.zone] = std::max(max_x[s.zone], s.position.x);
  }
  EXPECT_GT(min_x[1] - max_x[0], 2.0);
  EXPECT_GT(min_x[2] - max_x[1], 2.0);
}

TEST(FloorPlan, CampusPositionsReplicateTheHallGrid) {
  // Every hall repeats the single-hall grid layout, offset along x by the
  // hall pitch; the one-hall campus IS the synthetic grid.
  const auto grid = sim::FloorPlan::synthetic_grid(12);
  const auto campus = sim::FloorPlan::synthetic_campus(2, 12);
  const auto grid_ids = grid.wireless_ids();
  const auto campus_ids = campus.wireless_ids();
  ASSERT_EQ(campus_ids.size(), 24u);
  const double hall_pitch =
      campus.site(campus_ids[12]).position.x -
      campus.site(campus_ids[0]).position.x;
  EXPECT_GT(hall_pitch, grid.width());  // hall width + corridor
  for (std::size_t i = 0; i < 12; ++i) {
    const auto& ref = grid.site(grid_ids[i]).position;
    const auto& h0 = campus.site(campus_ids[i]).position;
    const auto& h1 = campus.site(campus_ids[12 + i]).position;
    EXPECT_DOUBLE_EQ(h0.x, ref.x) << "hall 0 sensor " << i;
    EXPECT_DOUBLE_EQ(h0.y, ref.y) << "hall 0 sensor " << i;
    EXPECT_DOUBLE_EQ(h1.x, ref.x + hall_pitch) << "hall 1 sensor " << i;
    EXPECT_DOUBLE_EQ(h1.y, ref.y) << "hall 1 sensor " << i;
  }
}

TEST(FloorPlan, SyntheticGridIsOneHallCampus) {
  const auto grid = sim::FloorPlan::synthetic_grid(25);
  const auto campus = sim::FloorPlan::synthetic_campus(1, 25);
  EXPECT_EQ(grid.width(), campus.width());
  EXPECT_EQ(grid.depth(), campus.depth());
  ASSERT_EQ(grid.sensors().size(), campus.sensors().size());
  for (std::size_t i = 0; i < grid.sensors().size(); ++i) {
    EXPECT_EQ(grid.sensors()[i].id, campus.sensors()[i].id);
    EXPECT_EQ(grid.sensors()[i].position.x, campus.sensors()[i].position.x);
    EXPECT_EQ(grid.sensors()[i].position.y, campus.sensors()[i].position.y);
    EXPECT_EQ(grid.sensors()[i].zone, 0u);
  }
}

TEST(FloorPlan, CampusValidation) {
  EXPECT_THROW((void)sim::FloorPlan::synthetic_campus(0, 16),
               std::invalid_argument);
  EXPECT_THROW((void)sim::FloorPlan::synthetic_campus(3, 0),
               std::invalid_argument);
}

TEST(FloorPlan, SyntheticIdsSkipTheReservedModalityBand) {
  // 150 wireless sensors would naively use ids 1..152 (skipping 40/41),
  // colliding with the reserved 100..199 dataset-channel band; instead
  // the ids jump to the extended range >= 200.
  for (const auto& plan : {sim::FloorPlan::synthetic_grid(150),
                           sim::FloorPlan::synthetic_campus(5, 30)}) {
    for (const auto id : plan.wireless_ids()) {
      EXPECT_TRUE(id < 100 || id >= 200) << "id " << id;
      EXPECT_NE(id, 40);
      EXPECT_NE(id, 41);
    }
    // Ids stay unique and ordered after the jump.
    auto ids = plan.wireless_ids();
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  }
}
