#include "auditherm/control/fleet_control.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "auditherm/clustering/similarity.hpp"
#include "auditherm/clustering/spectral.hpp"
#include "auditherm/hvac/comfort.hpp"
#include "auditherm/obs/metrics.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/selection/strategies.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/occupancy_estimation.hpp"

namespace auditherm::control {

namespace {

/// Chronological half split over the run: rows in the first half of the
/// days train the identification (and calibrate the CO2 estimator). Rows
/// lost to outages carry NaNs and drop out of the regressions naturally,
/// so the usable-day bookkeeping of core::split_dataset is not needed
/// here — and control sits below core in the library graph.
std::vector<bool> train_half_mask(const timeseries::TimeGrid& grid,
                                  std::size_t total_days) {
  const auto half_end = static_cast<timeseries::Minutes>(total_days / 2) *
                        timeseries::kMinutesPerDay;
  std::vector<bool> mask(grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    mask[k] = grid[k] < half_end;
  }
  return mask;
}

std::vector<bool> and_rows(const std::vector<bool>& a,
                           const std::vector<bool>& b) {
  std::vector<bool> out(a.size());
  for (std::size_t k = 0; k < a.size(); ++k) out[k] = a[k] && b[k];
  return out;
}

/// Occupant level of the schedule prior when the hall is in session; the
/// same crude two-level stand-in the serve front-end uses for
/// `--occupancy schedule`.
constexpr double kSchedulePriorOccupied = 100.0;

}  // namespace

sysid::InputPlan fleet_input_plan(const sim::AuditoriumDataset& dataset,
                                  OccupancySource source) {
  sysid::InputPlan plan;
  for (const auto id : dataset.extended_input_ids()) {
    if (id != sim::DatasetChannels::kOccupancy ||
        source == OccupancySource::kGroundTruth) {
      plan.slots.push_back(sysid::InputSlot::ground_truth(id));
      continue;
    }
    if (source == OccupancySource::kCo2Estimated) {
      sysid::Co2Channels co2;
      co2.co2 = sim::DatasetChannels::kCo2;
      co2.vav_flows = dataset.vav_ids();
      co2.occupancy = sim::DatasetChannels::kOccupancy;
      plan.slots.push_back(sysid::InputSlot::co2_estimated(co2));
    } else {
      plan.slots.push_back(sysid::InputSlot::schedule_prior(
          dataset.schedule, kSchedulePriorOccupied, 0.0));
    }
  }
  return plan;
}

ClosedLoopConfig fleet_loop_config(const sim::ScenarioSpec& spec,
                                   std::uint64_t base_seed, std::size_t index,
                                   std::size_t days) {
  const sim::DatasetConfig config = sim::scenario_config(spec);
  ClosedLoopConfig loop;
  loop.days = days;
  loop.step = config.sample_step;
  loop.control_dt_s = config.control_dt_s;
  loop.weather = config.weather;
  loop.occupancy = config.occupancy;
  loop.plant = config.plant;
  loop.turbulence_std_w = config.turbulence_std_w;
  loop.turbulence_tau_min = config.turbulence_tau_min;
  loop.turbulence_night_factor = config.turbulence_night_factor;
  // The PR-8 entity-seed contract: the loop seed is position `index` of
  // the base_seed stream; the sub-model seeds branch off the loop seed so
  // the scoring season never replays the identification trace.
  loop.seed = sim::derive_entity_seed(base_seed, index);
  loop.weather.seed = sim::derive_entity_seed(loop.seed, 1);
  loop.occupancy.seed = sim::derive_entity_seed(loop.seed, 2);
  return loop;
}

std::vector<FleetControlCase> score_fleet_control(
    const std::vector<sim::ScenarioSpec>& specs,
    const FleetControlOptions& options) {
  obs::TraceSpan span("control.fleet.score");
  for (const auto& spec : specs) {
    if (spec.building != sim::BuildingKind::kPaperHall) {
      throw std::invalid_argument(
          "score_fleet_control: scenario '" + spec.name +
          "': only paper-hall buildings can be scored (the closed-loop "
          "plant is the Brauer auditorium)");
    }
  }

  const auto outcomes = sim::run_fleet(specs);

  std::vector<FleetControlCase> cases;
  cases.reserve(outcomes.size());
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    obs::TraceSpan building_span("control.fleet.building");
    const sim::AuditoriumDataset& dataset = *outcomes[index].dataset;
    FleetControlCase scorecard;
    scorecard.spec = outcomes[index].spec;

    const auto& grid = dataset.trace.grid();
    const auto train = train_half_mask(grid, scorecard.spec.days);
    const auto occupied =
        dataset.schedule.mode_mask(grid, hvac::Mode::kOccupied);
    const auto fit_mask = and_rows(train, occupied);

    // The pipeline's Step 1-2 on this building: thermal zones from
    // spectral clustering, SMS sensors as the reduced state.
    const auto training = dataset.trace.filter_rows(fit_mask);
    const auto graph = clustering::build_similarity_graph(
        training, dataset.wireless_ids(), {});
    const auto clusters = clustering::spectral_cluster(graph).clusters();
    const auto selection = selection::stratified_near_mean(training, clusters);
    scorecard.zones = clusters.size();

    // Step 3 with the planned occupancy input: resolve against the
    // training half (calibration never sees scoring data), fit eq. 2 on
    // the augmented view.
    const auto plan = fleet_input_plan(dataset, options.occupancy);
    const auto resolved =
        sysid::resolve_input_plan(plan, dataset.trace, train);
    const auto full = resolved.augment(dataset.trace);
    for (const auto& derived : resolved.derived) {
      if (derived.id == sysid::kEstimatedOccupancyChannel) {
        scorecard.occupancy_mae = sysid::occupancy_mae(
            dataset.trace, sim::DatasetChannels::kOccupancy, *derived.column);
      }
    }
    sysid::EstimationOptions estimation;
    estimation.ridge = options.ridge;
    sysid::ModelEstimator estimator(selection.flattened(),
                                    resolved.channel_ids,
                                    sysid::ModelOrder::kSecond, estimation);
    const auto model = estimator.fit(full, fit_mask);

    ClosedLoopConfig loop =
        fleet_loop_config(scorecard.spec, options.base_seed, index,
                          options.days);
    loop.schedule = dataset.schedule;
    loop.comfort_zones = clusters;
    scorecard.loop_seed = loop.seed;

    // Comfort-aware setpoint: the PMV-neutral temperature of the
    // audience, shared by the MPC objective and the scorer.
    const double t_neutral = hvac::neutral_temperature(loop.comfort_model);
    MpcOptions mpc_options = options.mpc;
    mpc_options.objective.setpoint_c = t_neutral;

    const sim::DatasetConfig config = sim::scenario_config(scorecard.spec);
    RuleBasedController rule(config.thermostat, loop.schedule,
                             dataset.thermostat_ids());
    ModelPredictiveController mpc(model, dataset.plan.vav_count(),
                                  loop.schedule, mpc_options);

    scorecard.thermostat = run_closed_loop(loop, rule, t_neutral);
    scorecard.mpc = run_closed_loop(loop, mpc, t_neutral);
    cases.push_back(std::move(scorecard));
  }

  static const obs::MetricId kBuildingsScored =
      obs::counter_id("control.fleet.buildings_scored");
  obs::add_counter(kBuildingsScored, cases.size());
  return cases;
}

}  // namespace auditherm::control
