file(REMOVE_RECURSE
  "CMakeFiles/auditherm_control.dir/closed_loop.cpp.o"
  "CMakeFiles/auditherm_control.dir/closed_loop.cpp.o.d"
  "CMakeFiles/auditherm_control.dir/controllers.cpp.o"
  "CMakeFiles/auditherm_control.dir/controllers.cpp.o.d"
  "libauditherm_control.a"
  "libauditherm_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
