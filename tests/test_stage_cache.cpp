// Tests for the content-keyed stage cache: build-once semantics, key
// chaining, concurrency, and the sweep contract — cached sweep results
// are bitwise identical to standalone per-case run() at any thread count
// while the Step-1 stages compute exactly once per unique key.

#include "auditherm/core/stage_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "auditherm/core/pipeline.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/sim/dataset.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace core = auditherm::core;
namespace obs = auditherm::obs;
namespace sim = auditherm::sim;
namespace hvac = auditherm::hvac;
namespace timeseries = auditherm::timeseries;

namespace {

/// Shared small dataset (generation costs a few hundred ms).
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 28;
    config.failure_days = 4;
    return sim::generate_dataset(config);
  }();
  return ds;
}

const core::DataSplit& split() {
  static const core::DataSplit s = [] {
    auto required = dataset().sensor_ids();
    const auto inputs = dataset().input_ids();
    required.insert(required.end(), inputs.begin(), inputs.end());
    return core::split_dataset(dataset().trace, required, dataset().schedule,
                               hvac::Mode::kOccupied);
  }();
  return s;
}

/// Full-strength bitwise comparison of pipeline results.
void expect_bitwise_equal(const core::PipelineResult& a,
                          const core::PipelineResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.clustering.cluster_count, b.clustering.cluster_count);
  EXPECT_EQ(a.clustering.eigenvalues, b.clustering.eigenvalues);
  EXPECT_EQ(a.selection.per_cluster, b.selection.per_cluster);
  EXPECT_EQ(a.reduced_model.a(), b.reduced_model.a());
  EXPECT_EQ(a.reduced_model.a2(), b.reduced_model.a2());
  EXPECT_EQ(a.reduced_model.b(), b.reduced_model.b());
  EXPECT_EQ(a.reduced_eval.window_count, b.reduced_eval.window_count);
  EXPECT_EQ(a.reduced_eval.channel_rms, b.reduced_eval.channel_rms);
  EXPECT_EQ(a.reduced_eval.pooled_rms, b.reduced_eval.pooled_rms);
  EXPECT_EQ(a.cluster_mean_errors.per_cluster_abs,
            b.cluster_mean_errors.per_cluster_abs);
}

const std::vector<core::SweepCase>& sweep_cases() {
  static const std::vector<core::SweepCase> cases{
      {core::SelectionStrategy::kStratifiedNearMean, 7},
      {core::SelectionStrategy::kStratifiedRandom, 1},
      {core::SelectionStrategy::kStratifiedRandom, 2},
      {core::SelectionStrategy::kSimpleRandom, 1},
      {core::SelectionStrategy::kSimpleRandom, 2},
      {core::SelectionStrategy::kThermostats, 7},
  };
  return cases;
}

}  // namespace

TEST(StageKeyHasher, OrderAndContentSensitive) {
  core::StageKeyHasher a, b;
  a.add(std::uint64_t{1});
  a.add(std::uint64_t{2});
  b.add(std::uint64_t{2});
  b.add(std::uint64_t{1});
  EXPECT_NE(a.value(), b.value());

  core::StageKeyHasher c, d;
  c.add(1.5);
  d.add(1.5);
  EXPECT_EQ(c.value(), d.value());
  d.add(false);
  EXPECT_NE(c.value(), d.value());
}

TEST(StageKeyHasher, NanPayloadsCollapse) {
  // Every NaN encoding is "a gap"; keys must not depend on the payload.
  core::StageKeyHasher a, b;
  a.add(std::nan("1"));
  b.add(std::nan("2"));
  EXPECT_EQ(a.value(), b.value());
  core::StageKeyHasher c;
  c.add(0.0);
  EXPECT_NE(a.value(), c.value());
}

TEST(StageKeyHasher, MaskBitsMatter) {
  const std::vector<bool> mask_a{true, false, true};
  const std::vector<bool> mask_b{true, false, false};
  const std::vector<bool> mask_c{true, false};
  core::StageKeyHasher a, b, c;
  a.add(mask_a);
  b.add(mask_b);
  c.add(mask_c);
  EXPECT_NE(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
  EXPECT_NE(b.value(), c.value());
}

TEST(TraceFingerprint, SensitiveToContentInsensitiveToNanPayload) {
  timeseries::MultiTrace a(timeseries::TimeGrid(0, 30, 4), {1, 2});
  a.set(0, 0, 20.0);
  a.set(1, 1, 21.5);
  auto b = a;
  EXPECT_EQ(core::trace_fingerprint(a), core::trace_fingerprint(b));

  b.set(1, 1, 21.500000000000004);  // one ulp-ish edit must miss
  EXPECT_NE(core::trace_fingerprint(a), core::trace_fingerprint(b));

  // Same values on a different grid is different content.
  timeseries::MultiTrace c(timeseries::TimeGrid(0, 15, 4), {1, 2});
  c.set(0, 0, 20.0);
  c.set(1, 1, 21.5);
  EXPECT_NE(core::trace_fingerprint(a), core::trace_fingerprint(c));
}

TEST(StageCache, BuildsOncePerKeyAndCountsHits) {
  core::StageCache cache;
  std::atomic<int> builds{0};
  const auto build = [&] {
    ++builds;
    return 42;
  };
  const auto first = cache.get_or_build<int>("stage_a", 1, build);
  const auto again = cache.get_or_build<int>("stage_a", 1, build);
  EXPECT_EQ(*first, 42);
  EXPECT_EQ(first.get(), again.get());  // hit aliases the stored artifact
  EXPECT_EQ(builds.load(), 1);

  (void)cache.get_or_build<int>("stage_a", 2, build);  // new key
  EXPECT_EQ(builds.load(), 2);

  const auto stats = cache.stats("stage_a");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(cache.size(), 2u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats("stage_a").misses, 0u);
}

TEST(StageCache, StagesWithEqualKeysDoNotCollide) {
  core::StageCache cache;
  const auto a =
      cache.get_or_build<int>("stage_a", 7, [] { return 1; });
  const auto b =
      cache.get_or_build<double>("stage_b", 7, [] { return 2.5; });
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2.5);
  EXPECT_EQ(cache.stats("stage_a").misses, 1u);
  EXPECT_EQ(cache.stats("stage_b").misses, 1u);
}

TEST(StageCache, ConcurrentFirstTouchBuildsExactlyOnce) {
  // Hammer one key from many raw threads: the entry mutex must serialize
  // the builders so the artifact is built exactly once, and every caller
  // gets the same object.
  core::StageCache cache;
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const int>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        seen[t] = cache.get_or_build<int>("shared", 99, [&] {
          ++builds;
          return 7;
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(seen[t]);
    EXPECT_EQ(seen[t].get(), seen[0].get());
  }
  const auto stats = cache.stats("shared");
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads * 50u - 1u);
}

TEST(StageCache, PreparePopulatesEveryStage) {
  core::StageCache cache;
  core::PipelineConfig config;
  const core::ThermalModelingPipeline pipeline(config);
  const auto art =
      pipeline.prepare(dataset().trace, dataset().schedule, split(),
                       dataset().wireless_ids(), dataset().input_ids(), &cache);
  ASSERT_TRUE(art.training_store);
  ASSERT_GT(art.training.size(), 0u);
  ASSERT_TRUE(art.graph);
  ASSERT_TRUE(art.spectrum);
  ASSERT_TRUE(art.clustering);
  ASSERT_TRUE(art.clusters);
  ASSERT_TRUE(art.windows);
  ASSERT_TRUE(art.cluster_means);
  EXPECT_EQ(art.cluster_means->size(), art.clusters->size());
  EXPECT_EQ(art.train_mode_mask.size(), dataset().trace.size());
  for (const auto name :
       {core::stage::kTrainingView, core::stage::kSimilarityGraph,
        core::stage::kSpectrum, core::stage::kClustering,
        core::stage::kClusterSets, core::stage::kClusterMeans,
        core::stage::kWindows}) {
    EXPECT_EQ(cache.stats(name).misses, 1u) << name;
    EXPECT_EQ(cache.stats(name).hits, 0u) << name;
  }

  // A second prepare with the same inputs is all hits, aliasing the same
  // artifacts.
  const auto again =
      pipeline.prepare(dataset().trace, dataset().schedule, split(),
                       dataset().wireless_ids(), dataset().input_ids(), &cache);
  EXPECT_EQ(art.clustering.get(), again.clustering.get());
  EXPECT_EQ(art.spectrum.get(), again.spectrum.get());
  EXPECT_EQ(cache.stats(core::stage::kClustering).misses, 1u);
  EXPECT_EQ(cache.stats(core::stage::kClustering).hits, 1u);
}

TEST(StageCache, KeyChainingReusesUpstreamStages) {
  // Changing the cluster count must rebuild the clustering but reuse the
  // training view, similarity graph, and spectrum (the expensive
  // eigendecomposition) — the fig-10 access pattern.
  core::StageCache cache;
  core::PipelineConfig base;
  for (std::size_t k = 2; k <= 5; ++k) {
    core::PipelineConfig config = base;
    config.spectral.cluster_count = k;
    const core::ThermalModelingPipeline pipeline(config);
    (void)pipeline.prepare(dataset().trace, dataset().schedule, split(),
                           dataset().wireless_ids(), dataset().input_ids(),
                           &cache);
  }
  EXPECT_EQ(cache.stats(core::stage::kTrainingView).misses, 1u);
  EXPECT_EQ(cache.stats(core::stage::kSimilarityGraph).misses, 1u);
  EXPECT_EQ(cache.stats(core::stage::kSpectrum).misses, 1u);
  EXPECT_EQ(cache.stats(core::stage::kSpectrum).hits, 3u);
  EXPECT_EQ(cache.stats(core::stage::kClustering).misses, 4u);
  EXPECT_EQ(cache.stats(core::stage::kClustering).hits, 0u);
  // Windows don't depend on the clustering at all.
  EXPECT_EQ(cache.stats(core::stage::kWindows).misses, 1u);
}

TEST(StageCache, CachedRunMatchesUncachedRunBitwise) {
  core::PipelineConfig config;
  config.strategy = core::SelectionStrategy::kStratifiedNearMean;
  const core::ThermalModelingPipeline pipeline(config);
  const auto uncached = pipeline.run(
      dataset().trace, dataset().schedule, split(), dataset().wireless_ids(),
      dataset().input_ids(),
      core::RunOptions{.thermostat_ids = dataset().thermostat_ids()});
  core::StageCache cache;
  for (int rep = 0; rep < 2; ++rep) {
    const auto cached = pipeline.run(
        dataset().trace, dataset().schedule, split(), dataset().wireless_ids(),
        dataset().input_ids(),
        core::RunOptions{.thermostat_ids = dataset().thermostat_ids(),
                         .cache = &cache});
    expect_bitwise_equal(uncached, cached,
                         "cached rep " + std::to_string(rep));
  }
  EXPECT_EQ(cache.stats(core::stage::kClustering).misses, 1u);
  EXPECT_EQ(cache.stats(core::stage::kClustering).hits, 1u);
}

TEST(StageCache, SweepIsBitwiseIdenticalToPerCaseRunsAtAnyThreadCount) {
  // The acceptance contract: a sweep over N cases performs exactly one
  // clustering/eigendecomposition (cache counters say so) and its results
  // are bitwise identical to standalone uncached per-case runs, at 1, 2,
  // 4, and 8 threads.
  const auto& ds = dataset();
  const auto& cases = sweep_cases();

  // Reference: standalone uncached serial runs.
  std::vector<core::PipelineResult> reference;
  for (const auto& c : cases) {
    core::PipelineConfig config;
    config.strategy = c.strategy;
    config.selection_seed = c.seed;
    config.threads = 1;
    const core::ThermalModelingPipeline pipeline(config);
    reference.push_back(pipeline.run(
        ds.trace, ds.schedule, split(), ds.wireless_ids(), ds.input_ids(),
        core::RunOptions{.thermostat_ids = ds.thermostat_ids()}));
  }

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::StageCache cache;
    core::PipelineConfig base;
    base.threads = threads;
    const auto sweep = core::run_strategy_sweep(
        base, cases, ds.trace, ds.schedule, split(), ds.wireless_ids(),
        ds.input_ids(),
        core::RunOptions{.thermostat_ids = ds.thermostat_ids(),
                         .cache = &cache});
    ASSERT_EQ(sweep.size(), cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      expect_bitwise_equal(sweep[i], reference[i],
                           "threads " + std::to_string(threads) + " case " +
                               std::to_string(i));
    }
    // Exactly one Step-1 computation per stage for the whole sweep; every
    // case then hits.
    for (const auto name :
         {core::stage::kTrainingView, core::stage::kSimilarityGraph,
          core::stage::kSpectrum, core::stage::kClustering,
          core::stage::kClusterSets, core::stage::kClusterMeans,
          core::stage::kWindows}) {
      EXPECT_EQ(cache.stats(name).misses, 1u)
          << name << " at " << threads << " threads";
      EXPECT_EQ(cache.stats(name).hits, cases.size())
          << name << " at " << threads << " threads";
    }
  }
}

TEST(StageCache, SweepWithoutExternalCacheStillWorks) {
  // The default path (no caller-provided cache) uses a sweep-local cache.
  const auto& ds = dataset();
  core::PipelineConfig base;
  base.threads = 2;
  const std::vector<core::SweepCase> cases{
      {core::SelectionStrategy::kStratifiedNearMean, 7},
      {core::SelectionStrategy::kSimpleRandom, 3},
  };
  const auto sweep = core::run_strategy_sweep(
      base, cases, ds.trace, ds.schedule, split(), ds.wireless_ids(),
      ds.input_ids(), core::RunOptions{.thermostat_ids = ds.thermostat_ids()});
  ASSERT_EQ(sweep.size(), 2u);
  core::PipelineConfig config;
  config.strategy = cases[1].strategy;
  config.selection_seed = cases[1].seed;
  const core::ThermalModelingPipeline pipeline(config);
  const auto standalone = pipeline.run(
      ds.trace, ds.schedule, split(), ds.wireless_ids(), ds.input_ids(),
      core::RunOptions{.thermostat_ids = ds.thermostat_ids()});
  expect_bitwise_equal(sweep[1], standalone, "local-cache sweep case 1");
}

// --- Budget, LRU eviction, and lifecycle (PR 7) ---------------------------

namespace {

/// Byte size of a cached vector<double> under the sized_artifact trait.
std::size_t vec_bytes(std::size_t n) {
  const std::vector<double> probe(n);
  return core::sized_artifact<std::vector<double>>::bytes(probe);
}

}  // namespace

TEST(StageCacheBudget, SizedArtifactAccountsVectorsAndAdlTypes) {
  EXPECT_EQ(vec_bytes(100),
            sizeof(std::vector<double>) + 100 * sizeof(double));
  // Nested vectors recurse.
  std::vector<std::vector<double>> nested(2, std::vector<double>(10));
  const auto nested_bytes =
      core::sized_artifact<std::vector<std::vector<double>>>::bytes(nested);
  EXPECT_GE(nested_bytes, 2 * 10 * sizeof(double));
  // ADL hook: a MultiTrace accounts its sample matrix.
  const timeseries::MultiTrace trace(timeseries::TimeGrid(0, 30, 16), {1, 2});
  EXPECT_GE(core::sized_artifact<timeseries::MultiTrace>::bytes(trace),
            16 * 2 * sizeof(double));
}

TEST(StageCacheBudget, EvictsLeastRecentlyUsedWhenOverBudget) {
  // Room for two 100-double artifacts, not three.
  core::StageCache cache(core::CacheBudget{2 * vec_bytes(100) + 64});
  const auto build = [] { return std::vector<double>(100, 1.0); };
  (void)cache.get_or_build<std::vector<double>>("vec", 1, build);
  (void)cache.get_or_build<std::vector<double>>("vec", 2, build);
  EXPECT_EQ(cache.eviction_count(), 0u);
  // Touch key 1 so key 2 is the LRU tail, then overflow with key 3.
  (void)cache.get_or_build<std::vector<double>>("vec", 1, build);
  (void)cache.get_or_build<std::vector<double>>("vec", 3, build);
  EXPECT_EQ(cache.eviction_count(), 1u);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
  // Key 1 survived (hit), key 2 was evicted (miss rebuilds it).
  (void)cache.get_or_build<std::vector<double>>("vec", 1, build);
  (void)cache.get_or_build<std::vector<double>>("vec", 2, build);
  const auto stats = cache.stats("vec");
  // Misses: keys 1, 2, 3 first builds + key 2 rebuild.
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 2u);
  // Rebuilding key 2 overflowed again (evicting key 3): two evictions.
  EXPECT_EQ(cache.eviction_count(), 2u);
  EXPECT_EQ(cache.evicted_bytes(), 2 * vec_bytes(100));
}

TEST(StageCacheBudget, EvictionOrderIsDeterministicUnderFixedTouches) {
  // The same touch sequence on two fresh caches evicts the same keys.
  const auto run_sequence = [](core::StageCache& cache) {
    const auto build = [] { return std::vector<double>(50, 2.0); };
    const std::uint64_t touches[] = {1, 2, 3, 1, 4, 2, 5, 3, 1, 6};
    for (const auto key : touches) {
      (void)cache.get_or_build<std::vector<double>>("seq", key, build);
    }
    return std::tuple{cache.eviction_count(), cache.evicted_bytes(),
                      cache.resident_bytes(), cache.stats("seq").hits,
                      cache.stats("seq").misses};
  };
  core::StageCache a(core::CacheBudget{3 * vec_bytes(50) + 32});
  core::StageCache b(core::CacheBudget{3 * vec_bytes(50) + 32});
  EXPECT_EQ(run_sequence(a), run_sequence(b));
  EXPECT_GT(a.eviction_count(), 0u);
  EXPECT_LE(a.resident_bytes(), a.budget_bytes());
}

TEST(StageCacheBudget, UnlimitedByDefaultNeverEvicts) {
  core::StageCache cache;
  for (std::uint64_t k = 0; k < 32; ++k) {
    (void)cache.get_or_build<std::vector<double>>(
        "vec", k, [] { return std::vector<double>(100); });
  }
  EXPECT_EQ(cache.eviction_count(), 0u);
  EXPECT_EQ(cache.size(), 32u);
  EXPECT_EQ(cache.budget_bytes(), 0u);
}

TEST(StageCacheBudget, EvictionSkipsInFlightBuilds) {
  // A nested build (same thread, different key) publishes a large value
  // while the outer entry is still building: eviction must only consider
  // completed entries, and the outer publish must still land.
  core::StageCache cache(core::CacheBudget{vec_bytes(10) + 32});
  const auto outer = cache.get_or_build<std::vector<double>>(
      "outer", 1, [&] {
        const auto inner = cache.get_or_build<std::vector<double>>(
            "inner", 1, [] { return std::vector<double>(200, 3.0); });
        return std::vector<double>(inner->begin(), inner->begin() + 10);
      });
  ASSERT_EQ(outer->size(), 10u);
  EXPECT_DOUBLE_EQ(outer->front(), 3.0);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
  EXPECT_GE(cache.eviction_count(), 1u);
}

TEST(StageCacheLifecycle, ClearDuringBuildDoesNotRepublishStaleArtifact) {
  core::StageCache cache;
  std::atomic<bool> builder_started{false};
  std::atomic<bool> release_builder{false};

  std::shared_ptr<const int> stale;
  std::thread builder([&] {
    stale = cache.get_or_build<int>("slow", 1, [&] {
      builder_started.store(true);
      while (!release_builder.load()) std::this_thread::yield();
      return 42;
    });
  });
  while (!builder_started.load()) std::this_thread::yield();

  cache.clear();  // the in-flight build's claim is now stale
  release_builder.store(true);
  builder.join();

  // The slow builder's caller still gets its (correct) value...
  ASSERT_TRUE(stale);
  EXPECT_EQ(*stale, 42);
  // ...but the post-clear table must rebuild, not serve the stale bits.
  const auto fresh = cache.get_or_build<int>("slow", 1, [] { return 43; });
  EXPECT_EQ(*fresh, 43);
  EXPECT_EQ(cache.stats("slow").hits, 0u);
}

TEST(StageCacheLifecycle, WaiterSurvivesClearDuringBuild) {
  // Regression: clear() used to erase the building entry, leaving waiters
  // parked on build_done_ with nothing to wake them coherently.
  core::StageCache cache;
  std::atomic<bool> builder_started{false};
  std::atomic<bool> release_builder{false};

  std::thread builder([&] {
    (void)cache.get_or_build<int>("slow", 7, [&] {
      builder_started.store(true);
      while (!release_builder.load()) std::this_thread::yield();
      return 1;
    });
  });
  while (!builder_started.load()) std::this_thread::yield();

  std::shared_ptr<const int> waited;
  std::thread waiter([&] {
    waited = cache.get_or_build<int>("slow", 7, [] { return 2; });
  });
  // Give the waiter a moment to park, clear, then release the builder.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.clear();
  release_builder.store(true);
  builder.join();
  waiter.join();

  // The waiter either rebuilt post-clear (2) or adopted a fresh publish;
  // it must never hang and never observe a stale artifact slot.
  ASSERT_TRUE(waited);
  EXPECT_EQ(*waited, 2);
}

TEST(StageCacheLifecycle, ConcurrentRequestThreadsParkOnOneBuild) {
  // Serve's request threads call get_or_build from OUTSIDE any parallel
  // region: exactly one build must run, the rest park and adopt the
  // published artifact (pointer-identical, hence bitwise-equal).
  constexpr int kThreads = 8;
  core::StageCache cache;
  std::atomic<int> builds{0};
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<const std::vector<double>>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      results[t] = cache.get_or_build<std::vector<double>>(
          "request", 99, [&] {
            builds.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            return std::vector<double>{1.0, 2.0, 3.0};
          });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get()) << "thread " << t;
  }
  const auto stats = cache.stats("request");
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::size_t>(kThreads - 1));
}

TEST(StageCacheLifecycle, CountersMirrorWithConcurrentRecorderTraffic) {
  // Lock-order regression (TSan-covered in CI): the cache mirrors its
  // counters into the current obs recorder. With request threads hitting
  // the cache while other threads pound the recorder directly, any
  // nesting of the cache mutex inside recorder shard locks (or vice
  // versa) is a lock-order inversion TSan reports.
  obs::Recorder recorder;
  const obs::RecorderScope scope(&recorder);
  core::StageCache cache(core::CacheBudget{4 * vec_bytes(64)});
  std::atomic<bool> stop{false};

  std::vector<std::thread> recorders;
  recorders.reserve(2);
  for (int r = 0; r < 2; ++r) {
    recorders.emplace_back([&] {
      while (!stop.load()) obs::add_counter("test.external_traffic");
    });
  }
  std::vector<std::thread> cachers;
  cachers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    cachers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        (void)cache.get_or_build<std::vector<double>>(
            "mirrored", static_cast<std::uint64_t>((t + i) % 8),
            [] { return std::vector<double>(64, 4.0); });
      }
    });
  }
  for (auto& t : cachers) t.join();
  stop.store(true);
  for (auto& t : recorders) t.join();

  const auto totals = cache.totals();
  EXPECT_EQ(totals.hits + totals.misses, 4u * 200u);
  if (obs::kCompiledIn) {
    // The mirror reached the recorder (hit + miss + eviction counters).
    std::uint64_t mirrored = 0;
    for (const auto& [name, value] :
         recorder.metrics().snapshot().counters) {
      if (name.starts_with("stage_cache.")) mirrored += value;
    }
    EXPECT_GE(mirrored, 4u * 200u);
  }
}
