file(REMOVE_RECURSE
  "CMakeFiles/auditherm_linalg.dir/decompositions.cpp.o"
  "CMakeFiles/auditherm_linalg.dir/decompositions.cpp.o.d"
  "CMakeFiles/auditherm_linalg.dir/least_squares.cpp.o"
  "CMakeFiles/auditherm_linalg.dir/least_squares.cpp.o.d"
  "CMakeFiles/auditherm_linalg.dir/matrix.cpp.o"
  "CMakeFiles/auditherm_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/auditherm_linalg.dir/stats.cpp.o"
  "CMakeFiles/auditherm_linalg.dir/stats.cpp.o.d"
  "CMakeFiles/auditherm_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/auditherm_linalg.dir/vector_ops.cpp.o.d"
  "libauditherm_linalg.a"
  "libauditherm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
