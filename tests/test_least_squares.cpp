// Tests for the least-squares solvers (plain QR, ridge normal equations).

#include "auditherm/linalg/least_squares.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "auditherm/linalg/vector_ops.hpp"

namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
  return m;
}

}  // namespace

TEST(LeastSquares, ExactSolutionForConsistentSystem) {
  const auto a = random_matrix(10, 3, 1);
  const Vector x_true{2.0, -1.0, 0.5};
  const Vector b = a * x_true;
  const Vector x = linalg::solve_least_squares(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(LeastSquares, SolutionIsOptimal) {
  // Property: perturbing the LS solution in any coordinate direction never
  // reduces the residual.
  const auto a = random_matrix(30, 4, 2);
  const auto b = random_matrix(30, 1, 3).col_vector(0);
  const Vector x = linalg::solve_least_squares(a, b);
  const double best = linalg::residual_norm(a, x, b);
  for (std::size_t j = 0; j < 4; ++j) {
    for (double delta : {-1e-3, 1e-3}) {
      Vector perturbed = x;
      perturbed[j] += delta;
      EXPECT_GE(linalg::residual_norm(a, perturbed, b) + 1e-12, best);
    }
  }
}

TEST(LeastSquares, QrAndNormalEquationsAgree) {
  const auto a = random_matrix(25, 5, 4);
  const auto b = random_matrix(25, 2, 5);
  linalg::LeastSquaresOptions qr_opts;
  qr_opts.prefer_qr = true;
  linalg::LeastSquaresOptions ne_opts;
  ne_opts.prefer_qr = false;
  const auto x_qr = linalg::solve_least_squares(a, b, qr_opts);
  const auto x_ne = linalg::solve_least_squares(a, b, ne_opts);
  EXPECT_TRUE(linalg::approx_equal(x_qr, x_ne, 1e-8));
}

TEST(LeastSquares, RidgeShrinksSolution) {
  const auto a = random_matrix(20, 3, 6);
  const auto b = random_matrix(20, 1, 7).col_vector(0);
  const Vector x0 = linalg::solve_least_squares(a, b);
  linalg::LeastSquaresOptions heavy;
  heavy.ridge = 1e4;
  const Vector x_ridge = linalg::solve_least_squares(a, b, heavy);
  EXPECT_LT(linalg::norm2(x_ridge), linalg::norm2(x0));
  EXPECT_LT(linalg::norm2(x_ridge), 1e-2);  // essentially fully shrunk
}

TEST(LeastSquares, RidgeHandlesRankDeficiency) {
  Matrix a(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 3.0 * static_cast<double>(i);  // collinear
  }
  const Vector b(6, 1.0);
  // Plain QR must refuse; ridge must produce a finite answer.
  EXPECT_THROW((void)linalg::solve_least_squares(a, b), std::domain_error);
  linalg::LeastSquaresOptions opts;
  opts.ridge = 1e-6;
  const Vector x = linalg::solve_least_squares(a, b, opts);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
}

TEST(LeastSquares, RelativeRidgeInvariantToScale) {
  // Scaling the whole problem by 1000 must not change the solution when
  // the ridge is relative.
  const auto a = random_matrix(15, 3, 8);
  const auto b = random_matrix(15, 1, 9);
  linalg::LeastSquaresOptions opts;
  opts.ridge = 1e-4;
  opts.relative_ridge = true;
  opts.prefer_qr = false;
  const auto x1 = linalg::solve_least_squares(a, b, opts);
  const auto x2 = linalg::solve_least_squares(a * 1000.0, b * 1000.0, opts);
  EXPECT_TRUE(linalg::approx_equal(x1, x2, 1e-8));
}

TEST(LeastSquares, RidgeQrMatchesNormalEquationsWhenWellConditioned) {
  const auto a = random_matrix(30, 5, 21);
  const auto b = random_matrix(30, 2, 22);
  for (const bool relative : {false, true}) {
    linalg::LeastSquaresOptions qr_opts;
    qr_opts.ridge = 1e-4;
    qr_opts.relative_ridge = relative;
    qr_opts.prefer_qr = true;
    linalg::LeastSquaresOptions ne_opts = qr_opts;
    ne_opts.prefer_qr = false;
    const auto x_qr = linalg::solve_least_squares(a, b, qr_opts);
    const auto x_ne = linalg::solve_least_squares(a, b, ne_opts);
    EXPECT_TRUE(linalg::approx_equal(x_qr, x_ne, 1e-9));
  }
}

TEST(LeastSquares, RidgeQrSurvivesIllConditioning) {
  // Laeuchli regression test for the augmented-QR ridge path: with
  // eps = 1e-8, A^T A = [[1+eps^2, 1], [1, 1+eps^2]] rounds to the exactly
  // singular ones matrix in double precision, so the normal-equations path
  // cannot see the independent information in rows 2-3 no matter the
  // (tiny) ridge. The QR path works at cond(A) ~ 1e8 and recovers the true
  // minimizer x = (0.5, 0.5) to full working accuracy.
  const double eps = 1e-8;
  Matrix a(3, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(1, 0) = eps;
  a(2, 1) = eps;
  const Vector b{1.0, 0.0, 0.0};
  linalg::LeastSquaresOptions opts;
  opts.ridge = 1e-30;  // takes the ridge path; negligible shrinkage
  opts.prefer_qr = true;
  const Vector x = linalg::solve_least_squares(a, b, opts);
  EXPECT_NEAR(x[0], 0.5, 1e-6);
  EXPECT_NEAR(x[1], 0.5, 1e-6);

  // The historical normal-equations path either throws (singular Cholesky)
  // or returns something much further from the minimizer — that is the
  // condition-number squaring this regression test pins down.
  linalg::LeastSquaresOptions ne_opts = opts;
  ne_opts.prefer_qr = false;
  try {
    const Vector x_ne = linalg::solve_least_squares(a, b, ne_opts);
    const double err = std::max(std::abs(x_ne[0] - 0.5),
                                std::abs(x_ne[1] - 0.5));
    EXPECT_GT(err, 1e-4);
  } catch (const std::domain_error&) {
    // Singular to working precision: the expected failure mode.
  }
}

TEST(LeastSquares, ShapeValidation) {
  EXPECT_THROW(
      (void)linalg::solve_least_squares(Matrix(3, 2), Matrix(4, 1)),
      std::invalid_argument);
  EXPECT_THROW(
      (void)linalg::solve_least_squares(Matrix(2, 3), Matrix(2, 1)),
      std::invalid_argument);
  linalg::LeastSquaresOptions bad;
  bad.ridge = -1.0;
  EXPECT_THROW(
      (void)linalg::solve_least_squares(Matrix(3, 2), Matrix(3, 1), bad),
      std::invalid_argument);
}

TEST(LeastSquares, ResidualNormComputes) {
  Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(
      linalg::residual_norm(a, Vector{1.0, 1.0}, Vector{1.0, 0.0}), 1.0);
}
