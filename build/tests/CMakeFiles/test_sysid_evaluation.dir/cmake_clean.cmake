file(REMOVE_RECURSE
  "CMakeFiles/test_sysid_evaluation.dir/test_sysid_evaluation.cpp.o"
  "CMakeFiles/test_sysid_evaluation.dir/test_sysid_evaluation.cpp.o.d"
  "test_sysid_evaluation"
  "test_sysid_evaluation.pdb"
  "test_sysid_evaluation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysid_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
