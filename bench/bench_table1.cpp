// Table I: RMS of prediction error (90th percentile over sensors) for
// first- and second-order models in occupied and unoccupied modes.
//
// Paper values (degC): occupied 0.68 / 0.48, unoccupied 0.37 / 0.25.
// Expected shape: second-order beats first-order in both modes, and the
// unoccupied mode is easier than the occupied one.

#include "bench_common.hpp"

using namespace auditherm;

namespace {

double run_mode_order(const sim::AuditoriumDataset& dataset, hvac::Mode mode,
                      sysid::ModelOrder order) {
  const auto split = bench::standard_split(dataset, mode);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(), mode);

  sysid::ModelEstimator estimator(dataset.sensor_ids(), dataset.input_ids(),
                                  order);
  const auto model = estimator.fit(
      dataset.trace, core::and_masks(split.train_mask, mode_mask));

  sysid::EvaluationOptions opts;
  // 13.5 h at the 30-minute grid in occupied mode; the unoccupied window
  // is the whole 9 h night.
  opts.horizon_samples = mode == hvac::Mode::kOccupied ? 27 : 18;
  const auto windows =
      bench::evaluation_windows(dataset, split.validation_mask, mode);
  const auto eval =
      sysid::evaluate_prediction(model, dataset.trace, windows, opts);
  return eval.channel_rms_percentile(90.0);
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Table I: 90th-percentile per-sensor RMS prediction error (degC)");
  const auto dataset = bench::make_standard_dataset();

  const double occ1 =
      run_mode_order(dataset, hvac::Mode::kOccupied, sysid::ModelOrder::kFirst);
  const double occ2 = run_mode_order(dataset, hvac::Mode::kOccupied,
                                     sysid::ModelOrder::kSecond);
  const double unocc1 = run_mode_order(dataset, hvac::Mode::kUnoccupied,
                                       sysid::ModelOrder::kFirst);
  const double unocc2 = run_mode_order(dataset, hvac::Mode::kUnoccupied,
                                       sysid::ModelOrder::kSecond);

  bench::print_row("occupied, first-order", 0.68, occ1);
  bench::print_row("occupied, second-order", 0.48, occ2);
  bench::print_row("unoccupied, first-order", 0.37, unocc1);
  bench::print_row("unoccupied, second-order", 0.25, unocc2);

  std::printf("\nshape checks: 2nd < 1st (occupied): %s | "
              "2nd < 1st (unoccupied): %s | unoccupied < occupied: %s\n",
              occ2 < occ1 ? "yes" : "NO", unocc2 < unocc1 ? "yes" : "NO",
              unocc2 < occ2 && unocc1 < occ1 ? "yes" : "NO");
  return 0;
}
