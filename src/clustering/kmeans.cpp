#include "auditherm/clustering/kmeans.hpp"

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace auditherm::clustering {

namespace {

double sq_distance_to_row(const linalg::Matrix& points, std::size_t row,
                          const linalg::Matrix& centroids,
                          std::size_t centroid) {
  double s = 0.0;
  for (std::size_t j = 0; j < points.cols(); ++j) {
    const double d = points(row, j) - centroids(centroid, j);
    s += d * d;
  }
  return s;
}

/// One full k-means run from a k-means++ seeding.
KMeansResult run_once(const linalg::Matrix& points, std::size_t k,
                      const KMeansOptions& options, std::mt19937_64& rng) {
  const std::size_t n = points.rows();
  const std::size_t dims = points.cols();

  // --- k-means++ seeding. ---------------------------------------------
  linalg::Matrix centroids(k, dims);
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  {
    std::uniform_int_distribution<std::size_t> uni(0, n - 1);
    const std::size_t first = uni(rng);
    centroids.set_row(0, points.row_vector(first));
    for (std::size_t c = 1; c < k; ++c) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        min_sq[i] = std::min(min_sq[i],
                             sq_distance_to_row(points, i, centroids, c - 1));
        total += min_sq[i];
      }
      std::size_t chosen = 0;
      if (total > 0.0) {
        std::uniform_real_distribution<double> u(0.0, total);
        double target = u(rng);
        for (std::size_t i = 0; i < n; ++i) {
          target -= min_sq[i];
          if (target <= 0.0) {
            chosen = i;
            break;
          }
        }
      } else {
        chosen = uni(rng);  // all points identical; any seed works
      }
      centroids.set_row(c, points.row_vector(chosen));
    }
  }

  // --- Lloyd iterations. ------------------------------------------------
  KMeansResult result;
  result.labels.assign(n, 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance_to_row(points, i, centroids, c);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    // Recompute centroids; reseed empty clusters from the farthest point.
    linalg::Matrix sums(k, dims);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.labels[i];
      ++counts[c];
      for (std::size_t j = 0; j < dims; ++j) sums(c, j) += points(i, j);
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = sq_distance_to_row(points, i, centroids,
                                              result.labels[i]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        centroids.set_row(c, points.row_vector(far));
        result.labels[far] = c;
        changed = true;
        continue;
      }
      for (std::size_t j = 0; j < dims; ++j) {
        centroids(c, j) = sums(c, j) / static_cast<double>(counts[c]);
      }
    }
    result.iterations = iter + 1;
    if (!changed) break;
  }

  result.centroids = centroids;
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia +=
        sq_distance_to_row(points, i, centroids, result.labels[i]);
  }
  return result;
}

}  // namespace

KMeansResult kmeans(const linalg::Matrix& points, std::size_t k,
                    const KMeansOptions& options) {
  if (points.rows() == 0) throw std::invalid_argument("kmeans: empty points");
  if (k == 0 || k > points.rows()) {
    throw std::invalid_argument("kmeans: k outside [1, #rows]");
  }
  if (options.restarts == 0) {
    throw std::invalid_argument("kmeans: restarts == 0");
  }
  std::mt19937_64 rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < options.restarts; ++r) {
    KMeansResult run = run_once(points, k, options, rng);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace auditherm::clustering
