#include "auditherm/serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace auditherm::serve::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    const unsigned cp = parse_hex4();
    // Surrogate pairs are accepted but only BMP output is produced for a
    // lone unit; paired surrogates combine into the full code point.
    unsigned code = cp;
    if (cp >= 0xD800 && cp <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
      pos_ += 2;
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  Value parse_number() {
    // Walk the exact JSON number grammar before converting: strtod-family
    // routines accept supersets ("01", ".5", "1.") that JSON rejects.
    const std::size_t start = pos_;
    const auto digit_at = [this](std::size_t p) {
      return p < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[p])) != 0;
    };
    if (peek() == '-') ++pos_;
    if (!digit_at(pos_)) fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero stands alone
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) fail("invalid number");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit_at(pos_)) fail("invalid number");
      while (digit_at(pos_)) ++pos_;
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    const std::string_view token = text_.substr(start, pos_ - start);
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v.number);
    if (ec != std::errc() || end != token.data() + token.size() ||
        token.empty()) {
      pos_ = start;
      fail("invalid number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace auditherm::serve::json
