// Tests for the gapped multi-channel trace container.

#include "auditherm/timeseries/multi_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

MultiTrace make_trace() {
  MultiTrace trace(TimeGrid(0, 5, 4), {10, 20, 30});
  // Row 0: all valid; row 1: channel 20 missing; row 2: all missing;
  // row 3: all valid.
  for (std::size_t c = 0; c < 3; ++c) {
    trace.set(0, c, 1.0 + static_cast<double>(c));
    trace.set(3, c, 4.0 + static_cast<double>(c));
  }
  trace.set(1, 0, 1.5);
  trace.set(1, 2, 3.5);
  return trace;
}

}  // namespace

TEST(MultiTrace, StartsAllGaps) {
  MultiTrace trace(TimeGrid(0, 5, 3), {1, 2});
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_FALSE(trace.valid(k, c));
  EXPECT_DOUBLE_EQ(trace.coverage(), 0.0);
}

TEST(MultiTrace, DuplicateChannelThrows) {
  EXPECT_THROW(MultiTrace(TimeGrid(0, 5, 1), {1, 1}), std::invalid_argument);
}

TEST(MultiTrace, ChannelLookup) {
  const auto trace = make_trace();
  EXPECT_EQ(trace.channel_index(20), std::optional<std::size_t>{1});
  EXPECT_EQ(trace.channel_index(99), std::nullopt);
  EXPECT_EQ(trace.require_channel(30), 2u);
  EXPECT_THROW((void)trace.require_channel(99), std::invalid_argument);
}

TEST(MultiTrace, SetClearValid) {
  auto trace = make_trace();
  EXPECT_TRUE(trace.valid(0, 0));
  trace.clear(0, 0);
  EXPECT_FALSE(trace.valid(0, 0));
  EXPECT_TRUE(std::isnan(trace.value(0, 0)));
}

TEST(MultiTrace, Coverage) {
  const auto trace = make_trace();
  // 8 present of 12 cells.
  EXPECT_NEAR(trace.coverage(), 8.0 / 12.0, 1e-12);
}

TEST(MultiTrace, ChannelSeries) {
  const auto trace = make_trace();
  const auto s = trace.channel_series(20);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_TRUE(std::isnan(s[1]));
  EXPECT_DOUBLE_EQ(s[3], 5.0);
}

TEST(MultiTrace, SelectChannelsReordersAndCopies) {
  const auto trace = make_trace();
  const auto sub = trace.select_channels({30, 10});
  ASSERT_EQ(sub.channel_count(), 2u);
  EXPECT_EQ(sub.channels()[0], 30);
  EXPECT_DOUBLE_EQ(sub.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.value(0, 1), 1.0);
  EXPECT_THROW((void)trace.select_channels({77}), std::invalid_argument);
}

TEST(MultiTrace, SliceRows) {
  const auto trace = make_trace();
  const auto sliced = trace.slice_rows(1, 3);
  EXPECT_EQ(sliced.size(), 2u);
  EXPECT_EQ(sliced.grid().start(), 5);
  EXPECT_DOUBLE_EQ(sliced.value(0, 0), 1.5);
  EXPECT_FALSE(sliced.valid(1, 0));
  EXPECT_THROW((void)trace.slice_rows(3, 2), std::out_of_range);
  EXPECT_THROW((void)trace.slice_rows(0, 5), std::out_of_range);
}

TEST(MultiTrace, FilterRows) {
  const auto trace = make_trace();
  const auto filtered = trace.filter_rows({true, false, false, true});
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_DOUBLE_EQ(filtered.value(1, 0), 4.0);
  EXPECT_THROW((void)trace.filter_rows({true}), std::invalid_argument);
}

TEST(MultiTrace, RowsWithAllValid) {
  const auto trace = make_trace();
  const auto all = ts::rows_with_all_valid(trace);
  EXPECT_EQ(all, (std::vector<bool>{true, false, false, true}));
  const auto subset = ts::rows_with_all_valid(trace, {10, 30});
  EXPECT_EQ(subset, (std::vector<bool>{true, true, false, true}));
  EXPECT_THROW((void)ts::rows_with_all_valid(trace, {99}),
               std::invalid_argument);
}

TEST(MultiTrace, RowMeanSkipsGaps) {
  const auto trace = make_trace();
  const auto mean_all = ts::row_mean(trace);
  EXPECT_DOUBLE_EQ(mean_all[0], 2.0);        // (1+2+3)/3
  EXPECT_DOUBLE_EQ(mean_all[1], 2.5);        // (1.5+3.5)/2, gap skipped
  EXPECT_TRUE(std::isnan(mean_all[2]));      // fully missing row
  const auto mean_sub = ts::row_mean(trace, {10});
  EXPECT_DOUBLE_EQ(mean_sub[3], 4.0);
}
