// Closed-loop payoff of the input-plan layer (extension E4), two studies:
//
//  (1) Estimated-vs-truth identification: run the full pipeline with the
//      occupancy input swapped from the ground-truth channel to the CO2
//      mass-balance estimate, across several CO2 sensor noise levels, and
//      measure what the swap costs in held-out prediction error.
//  (2) Fleet control frontier: certainty-equivalent MPC planning on a
//      model identified with *estimated* occupancy, scored on comfort vs
//      energy against each building's own thermostat rule across three
//      ScenarioSpec regimes (score_fleet_control).
//
// Writes BENCH_occupancy_loop.json with the CI perf-smoke gates:
// estimated_pipeline_ok, max_rms_delta, mpc_energy_ok, mpc_comfort_ok.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace auditherm;

namespace {

// Deterministic standard normal from the splitmix64 counter stream
// (Box-Muller on two stream draws per sample); keeps the noise study
// reproducible across platforms, unlike std::normal_distribution.
double gaussian(std::uint64_t seed, std::uint64_t k) {
  const auto uniform = [](std::uint64_t x) {
    return (static_cast<double>(sim::splitmix64(x) >> 11) + 0.5) /
           9007199254740992.0;  // (0, 1), 53-bit
  };
  const double u = uniform(seed + 2 * k);
  const double v = uniform(seed + 2 * k + 1);
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * 3.14159265358979323846 * v);
}

/// The trace with extra zero-mean noise on the CO2 channel (clamped at
/// zero ppm); everything else untouched.
timeseries::MultiTrace with_co2_noise(const timeseries::MultiTrace& trace,
                                      double std_ppm, std::uint64_t seed) {
  timeseries::MultiTrace noisy = trace;
  const auto c = noisy.require_channel(sim::DatasetChannels::kCo2);
  for (std::size_t k = 0; k < noisy.size(); ++k) {
    if (!noisy.valid(k, c)) continue;
    noisy.set(k, c,
              std::max(0.0, noisy.value(k, c) + std_ppm * gaussian(seed, k)));
  }
  return noisy;
}

/// The paper input block with the occupancy slot fed by the CO2 estimate.
sysid::InputPlan estimated_plan(const sim::AuditoriumDataset& dataset) {
  sysid::InputPlan plan;
  for (const auto id : dataset.input_ids()) {
    if (id == sim::DatasetChannels::kOccupancy) {
      sysid::Co2Channels co2;
      co2.vav_flows = dataset.vav_ids();
      plan.slots.push_back(sysid::InputSlot::co2_estimated(co2));
    } else {
      plan.slots.push_back(sysid::InputSlot::ground_truth(id));
    }
  }
  return plan;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Extension E4: occupancy input plans in the identification loop");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const core::ThermalModelingPipeline pipeline{core::PipelineConfig{}};

  // --- Study 1: estimated-vs-truth identification across CO2 noise. ---
  const auto truth_result =
      pipeline.run(dataset.trace, dataset.schedule, split,
                   dataset.wireless_ids(), dataset.input_ids(), {});
  const double truth_rms = truth_result.reduced_eval.pooled_rms;
  std::printf("ground-truth occupancy: validation pooled RMS %.3f degC\n\n",
              truth_rms);

  const std::vector<double> noise_levels{0.0, 10.0, 25.0, 50.0};
  const auto plan = estimated_plan(dataset);
  std::string noise_rows;
  double max_rms_delta = 0.0;
  bool estimated_ok = true;
  std::printf("%-14s %12s %14s %12s\n", "CO2 noise", "occ MAE", "est RMS",
              "RMS delta");
  for (std::size_t i = 0; i < noise_levels.size(); ++i) {
    const double level = noise_levels[i];
    const auto noisy =
        with_co2_noise(dataset.trace, level, 0xE4 + i);
    const auto resolved =
        sysid::resolve_input_plan(plan, noisy, split.train_mask);
    double occ_mae = 0.0;
    for (const auto& derived : resolved.derived) {
      if (derived.id == sysid::kEstimatedOccupancyChannel) {
        occ_mae = sysid::occupancy_mae(
            noisy, sim::DatasetChannels::kOccupancy, *derived.column);
      }
    }
    core::RunOptions options;
    options.input_plan = &plan;
    const auto result =
        pipeline.run(noisy, dataset.schedule, split, dataset.wireless_ids(),
                     dataset.input_ids(), options);
    const double est_rms = result.reduced_eval.pooled_rms;
    const double delta = est_rms - truth_rms;
    max_rms_delta = std::max(max_rms_delta, std::abs(delta));
    estimated_ok = estimated_ok && std::isfinite(est_rms) && est_rms > 0.0;
    std::printf("%8.0f ppm %10.2f p %12.3f C %+10.3f C\n", level, occ_mae,
                est_rms, delta);
    noise_rows += std::string(i > 0 ? ",\n    " : "    ") + "{\"noise_ppm\": " +
                  fmt(level) + ", \"occupancy_mae\": " + fmt(occ_mae) +
                  ", \"estimated_rms\": " + fmt(est_rms) +
                  ", \"rms_delta\": " + fmt(delta) + "}";
  }

  // --- Study 2: MPC-vs-thermostat frontier across fleet regimes. ---
  std::vector<sim::ScenarioSpec> specs(3);
  specs[0].name = "paper-hall";
  specs[1].name = "busy-winter";
  specs[1].season = sim::Season::kWinter;
  specs[1].occupancy = sim::OccupancyRegime::kBusy;
  specs[2].name = "quiet-eco";
  specs[2].occupancy = sim::OccupancyRegime::kQuiet;
  specs[2].hvac = sim::HvacRegime::kEco;
  for (auto& spec : specs) {
    spec.days = 28;
    spec.failure_days = 4;
  }

  control::FleetControlOptions fleet_options;
  fleet_options.days = 7;  // one scoring week per building
  const auto cases = control::score_fleet_control(specs, fleet_options);

  std::printf("\n%-12s %5s %8s | %22s | %22s\n", "scenario", "zones",
              "occ MAE", "thermostat (viol%, kWh)", "MPC (viol%, kWh)");
  std::string fleet_rows;
  bool mpc_energy_ok = true;
  bool mpc_comfort_ok = true;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    std::printf("%-12s %5zu %6.1f p | %9.1f%% %10.0f | %9.1f%% %10.0f\n",
                c.spec.name.c_str(), c.zones, c.occupancy_mae,
                100.0 * c.thermostat.comfort_violation_fraction,
                c.thermostat.total_energy_kwh(),
                100.0 * c.mpc.comfort_violation_fraction,
                c.mpc.total_energy_kwh());
    mpc_energy_ok = mpc_energy_ok && c.mpc.total_energy_kwh() <=
                                         c.thermostat.total_energy_kwh();
    // Comfort stays no worse than the rule (small slack for ties).
    mpc_comfort_ok = mpc_comfort_ok &&
                     c.mpc.comfort_violation_fraction <=
                         c.thermostat.comfort_violation_fraction + 0.02;
    fleet_rows += std::string(i > 0 ? ",\n    " : "    ") + "{\"name\": \"" +
                  c.spec.name + "\", \"zones\": " + std::to_string(c.zones) +
                  ", \"loop_seed\": " + std::to_string(c.loop_seed) +
                  ", \"occupancy_mae\": " + fmt(c.occupancy_mae) +
                  ", \"thermostat_violation\": " +
                  fmt(c.thermostat.comfort_violation_fraction) +
                  ", \"thermostat_energy_kwh\": " +
                  fmt(c.thermostat.total_energy_kwh()) +
                  ", \"mpc_violation\": " +
                  fmt(c.mpc.comfort_violation_fraction) +
                  ", \"mpc_energy_kwh\": " + fmt(c.mpc.total_energy_kwh()) +
                  "}";
  }

  std::printf("\nshape checks: estimated pipeline completes: %s | max RMS "
              "delta %.3f degC | MPC energy <= rule: %s | MPC comfort ok: "
              "%s\n",
              estimated_ok ? "yes" : "NO", max_rms_delta,
              mpc_energy_ok ? "yes" : "NO", mpc_comfort_ok ? "yes" : "NO");

  bench::JsonObject json;
  json.add("truth_rms", truth_rms);
  json.add_raw("noise_study", "[\n" + noise_rows + "\n  ]");
  json.add("max_rms_delta", max_rms_delta);
  json.add("estimated_pipeline_ok", estimated_ok);
  json.add_raw("fleet", "[\n" + fleet_rows + "\n  ]");
  json.add("mpc_energy_ok", mpc_energy_ok);
  json.add("mpc_comfort_ok", mpc_comfort_ok);
  if (!json.write_file("BENCH_occupancy_loop.json")) {
    std::fprintf(stderr,
                 "warning: could not write BENCH_occupancy_loop.json\n");
    return 1;
  }
  std::printf("wrote BENCH_occupancy_loop.json\n");
  return 0;
}
