// Ablation: the eigengap rule vs fixed cluster counts.
//
// DESIGN.md calls out the log-eigengap model-selection rule. This bench
// scores every fixed k by the two quality metrics the paper uses
// (intra-cluster max temperature difference, intra-cluster correlation)
// plus the SMS selection error, and marks where the eigengap lands.

#include "bench_cluster_quality.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Ablation: eigengap-chosen k vs fixed k (correlation)");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));
  const auto validation = dataset.trace.filter_rows(
      core::and_masks(split.validation_mask, mode_mask));

  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), {});
  const auto eigengap_k =
      clustering::analyze_spectrum(graph.weights).eigengap_cluster_count();

  std::printf("%-6s %-20s %-16s %-16s %-10s\n", "k", "worst max-diff p95",
              "min intra-corr", "SMS p99 (degC)", "sensors");
  for (std::size_t k = 2; k <= 8; ++k) {
    clustering::SpectralOptions spec;
    spec.cluster_count = k;
    const auto result = clustering::spectral_cluster(graph, spec);
    const auto clusters = result.clusters();

    double worst_diff = 0.0;
    double min_corr = 1.0;
    for (const auto& cluster : clusters) {
      const auto diffs =
          timeseries::pairwise_max_differences(training, cluster);
      if (!diffs.empty()) {
        worst_diff = std::max(worst_diff, linalg::percentile(diffs, 95.0));
      }
      min_corr = std::min(min_corr,
                          bench::mean_intra_correlation(training, cluster));
    }
    const auto sel = selection::stratified_near_mean(training, clusters);
    const double sms = selection::evaluate_cluster_mean_prediction(
                           validation, clusters, sel)
                           .percentile(99.0);
    std::printf("%-6zu %-20.3f %-16.3f %-16.3f %-10zu%s\n", k, worst_diff,
                min_corr, sms, k,
                k == eigengap_k ? "   <- eigengap's choice" : "");
  }
  std::printf("\nreading: larger k always reduces SMS error (more sensors "
              "deployed) — the eigengap instead finds the smallest k whose "
              "clusters are coherent, which is the cost/accuracy knee the "
              "paper argues for.\n");
  return 0;
}
