#pragma once

/// \file stats.hpp
/// Scalar statistics kernels: means, RMS, percentiles, empirical CDFs and
/// Pearson correlation. These back every error metric the paper reports
/// (90th/99th percentile RMS, CDFs of per-sensor error, correlation maps).

#include <cstddef>
#include <vector>

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Arithmetic mean; throws std::invalid_argument on empty input.
[[nodiscard]] double mean(const Vector& x);

/// Unbiased sample variance (n-1 denominator); requires size >= 2.
[[nodiscard]] double variance(const Vector& x);

/// Sample standard deviation; requires size >= 2.
[[nodiscard]] double stddev(const Vector& x);

/// Root mean square sqrt(mean(x_i^2)); throws on empty input.
[[nodiscard]] double rms(const Vector& x);

/// Percentile in [0, 100] with linear interpolation between order
/// statistics (the convention MATLAB's prctile uses, matching the paper's
/// 90th/99th-percentile error metrics). Throws std::invalid_argument on
/// empty input or p outside [0, 100].
[[nodiscard]] double percentile(Vector x, double p);

/// Pearson correlation coefficient; throws std::invalid_argument on size
/// mismatch or size < 2. Returns 0 when either series is constant (the
/// coefficient is undefined; 0 is the conservative "no association" value).
[[nodiscard]] double pearson_correlation(const Vector& x, const Vector& y);

/// Sample covariance (n-1 denominator); same preconditions as correlation.
[[nodiscard]] double covariance(const Vector& x, const Vector& y);

/// A point on an empirical CDF.
struct CdfPoint {
  double value = 0.0;        ///< sorted sample value
  double probability = 0.0;  ///< fraction of samples <= value
};

/// Empirical CDF of a sample: sorted values paired with i/n probabilities.
/// Throws std::invalid_argument on empty input.
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(Vector x);

/// Evaluate an empirical CDF at `value` (fraction of samples <= value).
[[nodiscard]] double cdf_at(const std::vector<CdfPoint>& cdf, double value);

}  // namespace auditherm::linalg
