// Unit tests for linalg::Matrix and its free-function operations.

#include "auditherm/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const auto i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  const auto d = Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, ColumnAndRowFactories) {
  const auto c = Matrix::column({1.0, 2.0, 3.0});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(2, 0), 3.0);
  const auto r = Matrix::row({4.0, 5.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 2u);
  EXPECT_DOUBLE_EQ(r(0, 1), 5.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  m.at(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
}

TEST(Matrix, RowAndColVectors) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.row_vector(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.col_vector(2), (Vector{3.0, 6.0}));
  EXPECT_THROW((void)m.row_vector(2), std::out_of_range);
  EXPECT_THROW((void)m.col_vector(3), std::out_of_range);
}

TEST(Matrix, SetRowAndCol) {
  Matrix m(2, 2);
  m.set_row(0, {1.0, 2.0});
  m.set_col(1, {9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
  EXPECT_THROW(m.set_row(0, {1.0}), std::invalid_argument);
  EXPECT_THROW(m.set_col(5, {1.0, 2.0}), std::out_of_range);
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, BlockExtractAndSet) {
  Matrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      m(i, j) = static_cast<double>(3 * i + j);
  const auto b = m.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
  Matrix target(4, 4);
  target.set_block(2, 2, b);
  EXPECT_DOUBLE_EQ(target(3, 3), 8.0);
  EXPECT_THROW((void)m.block(2, 2, 2, 2), std::out_of_range);
  EXPECT_THROW(target.set_block(3, 3, b), std::out_of_range);
}

TEST(Matrix, BlockRowwiseCopyEdgeCases) {
  Matrix m(4, 5);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      m(i, j) = static_cast<double>(10 * i + j);
  // Full-matrix block is an exact copy.
  EXPECT_EQ(m.block(0, 0, 4, 5), m);
  // Zero-sized blocks are legal and empty.
  EXPECT_EQ(m.block(2, 3, 0, 0).rows(), 0u);
  // Single row / single column slices.
  const auto row = m.block(2, 0, 1, 5);
  for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(row(0, j), m(2, j));
  const auto col = m.block(0, 4, 4, 1);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(col(i, 0), m(i, 4));
  // set_block round-trips an interior block bitwise.
  const auto b = m.block(1, 1, 2, 3);
  Matrix copy = m;
  copy.set_block(1, 1, b);
  EXPECT_EQ(copy, m);
}

TEST(Matrix, Norms) {
  Matrix m{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(Matrix().max_abs(), 0.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const auto diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), 0.0);
  const auto scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const auto scaled2 = 0.5 * a;
  EXPECT_DOUBLE_EQ(scaled2(0, 1), 1.0);
  EXPECT_THROW(a += Matrix(3, 3), std::invalid_argument);
  EXPECT_THROW(a -= Matrix(1, 2), std::invalid_argument);
}

TEST(Matrix, MatrixProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const auto c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(a * Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = a * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_THROW(a * Vector{1.0}, std::invalid_argument);
}

TEST(Matrix, GramMatchesExplicitTranspose) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix b{{1.0}, {0.5}, {-1.0}};
  const auto g = linalg::gram(a, b);
  const auto expected = a.transposed() * b;
  EXPECT_TRUE(linalg::approx_equal(g, expected, 1e-12));
  EXPECT_THROW(linalg::gram(a, Matrix(2, 1)), std::invalid_argument);
}

TEST(Matrix, OuterProductMatchesExplicitTranspose) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.5, -1.0}, {2.0, 1.0}, {0.0, 3.0}};
  const auto o = linalg::outer_product(a, b);
  const auto expected = a * b.transposed();
  EXPECT_TRUE(linalg::approx_equal(o, expected, 1e-12));
  EXPECT_THROW(linalg::outer_product(a, Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, ApproxEqual) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0 + 1e-9}};
  EXPECT_TRUE(linalg::approx_equal(a, b, 1e-8));
  EXPECT_FALSE(linalg::approx_equal(a, b, 1e-10));
  EXPECT_FALSE(linalg::approx_equal(a, Matrix(2, 1), 1.0));
}

TEST(Matrix, StreamOutput) {
  Matrix m{{1.0, 2.0}};
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find("1x2"), std::string::npos);
  EXPECT_NE(os.str().find('2'), std::string::npos);
}
