file(REMOVE_RECURSE
  "CMakeFiles/test_selection_evaluation.dir/test_selection_evaluation.cpp.o"
  "CMakeFiles/test_selection_evaluation.dir/test_selection_evaluation.cpp.o.d"
  "test_selection_evaluation"
  "test_selection_evaluation.pdb"
  "test_selection_evaluation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
