#include "auditherm/timeseries/multi_trace.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace auditherm::timeseries {

namespace {
constexpr double kGap = std::numeric_limits<double>::quiet_NaN();
}

MultiTrace::MultiTrace(TimeGrid grid, std::vector<ChannelId> channels)
    : grid_(grid),
      channels_(std::move(channels)),
      values_(grid.size(), channels_.size(), kGap) {
  std::unordered_set<ChannelId> seen;
  for (ChannelId id : channels_) {
    if (!seen.insert(id).second) {
      throw std::invalid_argument("MultiTrace: duplicate channel id " +
                                  std::to_string(id));
    }
  }
}

std::optional<std::size_t> MultiTrace::channel_index(
    ChannelId id) const noexcept {
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c] == id) return c;
  }
  return std::nullopt;
}

std::size_t MultiTrace::require_channel(ChannelId id) const {
  if (auto c = channel_index(id)) return *c;
  throw std::invalid_argument("MultiTrace: unknown channel id " +
                              std::to_string(id));
}

bool MultiTrace::valid(std::size_t k, std::size_t c) const noexcept {
  return !std::isnan(values_(k, c));
}

void MultiTrace::clear(std::size_t k, std::size_t c) noexcept {
  values_(k, c) = kGap;
}

linalg::Vector MultiTrace::channel_series(ChannelId id) const {
  return values_.col_vector(require_channel(id));
}

MultiTrace MultiTrace::select_channels(
    const std::vector<ChannelId>& ids) const {
  MultiTrace out(grid_, ids);
  for (std::size_t c = 0; c < ids.size(); ++c) {
    const std::size_t src = require_channel(ids[c]);
    for (std::size_t k = 0; k < size(); ++k) {
      out.values_(k, c) = values_(k, src);
    }
  }
  return out;
}

MultiTrace MultiTrace::slice_rows(std::size_t first, std::size_t last) const {
  if (first > last || last > size()) {
    throw std::out_of_range("MultiTrace::slice_rows");
  }
  TimeGrid g(grid_.start() + static_cast<Minutes>(first) * grid_.step(),
             grid_.step(), last - first);
  MultiTrace out(g, channels_);
  for (std::size_t k = first; k < last; ++k) {
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      out.values_(k - first, c) = values_(k, c);
    }
  }
  return out;
}

MultiTrace MultiTrace::filter_rows(const std::vector<bool>& keep) const {
  if (keep.size() != size()) {
    throw std::invalid_argument("MultiTrace::filter_rows: mask size mismatch");
  }
  std::size_t n = 0;
  for (bool b : keep) n += b ? 1 : 0;
  TimeGrid g(grid_.start(), grid_.step(), n);
  MultiTrace out(g, channels_);
  std::size_t row = 0;
  for (std::size_t k = 0; k < size(); ++k) {
    if (!keep[k]) continue;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      out.values_(row, c) = values_(k, c);
    }
    ++row;
  }
  return out;
}

double MultiTrace::coverage() const noexcept {
  const std::size_t total = size() * channel_count();
  if (total == 0) return 0.0;
  std::size_t present = 0;
  for (double v : values_.data()) present += std::isnan(v) ? 0 : 1;
  return static_cast<double>(present) / static_cast<double>(total);
}

std::vector<bool> rows_with_all_valid(const MultiTrace& trace,
                                      const std::vector<ChannelId>& ids) {
  std::vector<std::size_t> cols;
  if (ids.empty()) {
    cols.resize(trace.channel_count());
    for (std::size_t c = 0; c < cols.size(); ++c) cols[c] = c;
  } else {
    cols.reserve(ids.size());
    for (ChannelId id : ids) cols.push_back(trace.require_channel(id));
  }
  std::vector<bool> mask(trace.size(), true);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    for (std::size_t c : cols) {
      if (!trace.valid(k, c)) {
        mask[k] = false;
        break;
      }
    }
  }
  return mask;
}

linalg::Vector row_mean(const MultiTrace& trace,
                        const std::vector<ChannelId>& ids) {
  std::vector<std::size_t> cols;
  if (ids.empty()) {
    cols.resize(trace.channel_count());
    for (std::size_t c = 0; c < cols.size(); ++c) cols[c] = c;
  } else {
    cols.reserve(ids.size());
    for (ChannelId id : ids) cols.push_back(trace.require_channel(id));
  }
  linalg::Vector out(trace.size(), std::numeric_limits<double>::quiet_NaN());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t c : cols) {
      if (trace.valid(k, c)) {
        s += trace.value(k, c);
        ++n;
      }
    }
    if (n > 0) out[k] = s / static_cast<double>(n);
  }
  return out;
}

}  // namespace auditherm::timeseries
