
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/csv_io.cpp" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/csv_io.cpp.o" "gcc" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/csv_io.cpp.o.d"
  "/root/repo/src/timeseries/multi_trace.cpp" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/multi_trace.cpp.o" "gcc" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/multi_trace.cpp.o.d"
  "/root/repo/src/timeseries/resample.cpp" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/resample.cpp.o" "gcc" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/resample.cpp.o.d"
  "/root/repo/src/timeseries/segmentation.cpp" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/segmentation.cpp.o" "gcc" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/segmentation.cpp.o.d"
  "/root/repo/src/timeseries/time_grid.cpp" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/time_grid.cpp.o" "gcc" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/time_grid.cpp.o.d"
  "/root/repo/src/timeseries/trace_stats.cpp" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/trace_stats.cpp.o" "gcc" "src/timeseries/CMakeFiles/auditherm_timeseries.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/auditherm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
