// auditherm command-line tool.
//
//   auditherm simulate --days 98 --failure-days 34 --seed 1234
//       --out trace.csv [--truth truth.csv]
//   auditherm analyze --data trace.csv [--metric correlation|euclidean]
//       [--clusters K] [--order 1|2] [--per-cluster N]
//
// The CSV uses the library's channel conventions: ids < 100 are
// temperature sensors (40/41 the HVAC thermostats), 101..100+m the VAV
// flows, 110 occupancy, 111 lighting, 112 ambient, 113 supply temperature.

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "auditherm/auditherm.hpp"

using namespace auditherm;

namespace {

/// Tiny --key value argument map.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::invalid_argument(std::string("expected --flag, got ") +
                                    argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      throw std::invalid_argument("dangling flag without a value");
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::invalid_argument("missing required --" + key);
    return *v;
  }
  [[nodiscard]] long get_long(const std::string& key, long fallback) const {
    const auto v = get(key);
    return v ? std::stol(*v) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

int usage() {
  std::printf(
      "usage:\n"
      "  auditherm simulate --out trace.csv [--days N] [--failure-days N]\n"
      "                     [--seed S] [--truth truth.csv]\n"
      "  auditherm analyze  --data trace.csv [--metric correlation|euclidean]\n"
      "                     [--clusters K] [--order 1|2] [--per-cluster N]\n"
      "                     [--sweep SEEDS]   compare strategies over SEEDS\n"
      "                                       seeds, reusing cached stages\n");
  return 2;
}

int cmd_simulate(const Args& args) {
  sim::DatasetConfig config;
  config.days = static_cast<std::size_t>(args.get_long("days", 98));
  config.failure_days =
      static_cast<std::size_t>(args.get_long("failure-days", 34));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 1234));
  const auto out = args.require("out");

  std::printf("simulating %zu days (seed %llu)...\n", config.days,
              static_cast<unsigned long long>(config.seed));
  const auto dataset = sim::generate_dataset(config);
  timeseries::write_csv_file(out, dataset.trace);
  std::printf("wrote %s: %zu samples x %zu channels, coverage %.1f%%\n",
              out.c_str(), dataset.trace.size(),
              dataset.trace.channel_count(),
              100.0 * dataset.trace.coverage());
  if (const auto truth = args.get("truth")) {
    timeseries::write_csv_file(*truth, dataset.truth);
    std::printf("wrote %s (noise-free ground truth)\n", truth->c_str());
  }
  return 0;
}

/// Partition a loaded trace's channels by the library conventions.
struct ChannelSets {
  std::vector<timeseries::ChannelId> sensors;      // wireless, < 100, not 40/41
  std::vector<timeseries::ChannelId> thermostats;  // 40 / 41
  std::vector<timeseries::ChannelId> inputs;       // [flows, occ, light, amb]
};

const char* strategy_name(core::SelectionStrategy strategy) {
  switch (strategy) {
    case core::SelectionStrategy::kStratifiedNearMean: return "near-mean";
    case core::SelectionStrategy::kStratifiedRandom: return "stratified-random";
    case core::SelectionStrategy::kSimpleRandom: return "simple-random";
    case core::SelectionStrategy::kThermostats: return "thermostats";
  }
  return "?";
}

ChannelSets classify_channels(const timeseries::MultiTrace& trace) {
  ChannelSets sets;
  std::vector<timeseries::ChannelId> flows;
  for (auto id : trace.channels()) {
    if (id == 40 || id == 41) {
      sets.thermostats.push_back(id);
    } else if (id < 100) {
      sets.sensors.push_back(id);
    } else if (id >= sim::DatasetChannels::kVavBase &&
               id < sim::DatasetChannels::kOccupancy) {
      flows.push_back(id);
    }
  }
  sets.inputs = flows;
  for (auto id : {sim::DatasetChannels::kOccupancy,
                  sim::DatasetChannels::kLighting,
                  sim::DatasetChannels::kAmbient}) {
    if (trace.channel_index(id)) sets.inputs.push_back(id);
  }
  if (sets.sensors.size() < 2 || sets.inputs.size() < 2) {
    throw std::runtime_error(
        "analyze: trace lacks sensor (<100) or input (>=101) channels");
  }
  return sets;
}

int cmd_analyze(const Args& args) {
  const auto path = args.require("data");
  std::printf("loading %s...\n", path.c_str());
  const auto trace = timeseries::read_csv_file(path);
  const auto sets = classify_channels(trace);
  std::printf("channels: %zu sensors, %zu thermostats, %zu inputs; %zu "
              "samples at %lld-minute steps\n",
              sets.sensors.size(), sets.thermostats.size(),
              sets.inputs.size(), trace.size(),
              static_cast<long long>(trace.grid().step()));

  // Split.
  hvac::Schedule schedule;
  auto required = sets.sensors;
  required.insert(required.end(), sets.thermostats.begin(),
                  sets.thermostats.end());
  required.insert(required.end(), sets.inputs.begin(), sets.inputs.end());
  const auto split = core::split_dataset(trace, required, schedule,
                                         hvac::Mode::kOccupied);
  std::printf("usable days: %zu (train %zu / validate %zu)\n",
              split.usable_days.size(), split.train_days.size(),
              split.validation_days.size());

  // Pipeline.
  core::PipelineConfig config;
  if (const auto metric = args.get("metric")) {
    config.similarity.metric = *metric == "euclidean"
                                   ? clustering::SimilarityMetric::kEuclidean
                                   : clustering::SimilarityMetric::kCorrelation;
  }
  config.spectral.cluster_count =
      static_cast<std::size_t>(args.get_long("clusters", 0));
  config.order = args.get_long("order", 2) == 1 ? sysid::ModelOrder::kFirst
                                                : sysid::ModelOrder::kSecond;
  config.sensors_per_cluster =
      static_cast<std::size_t>(args.get_long("per-cluster", 1));

  // All Step-1 artifacts (similarity graph, eigendecomposition, windows)
  // are shared through the cache; the sweep below reuses them for free.
  core::StageCache cache;
  const core::ThermalModelingPipeline pipeline(config);
  const auto result = pipeline.run(trace, schedule, split, sets.sensors,
                                   sets.inputs, sets.thermostats, cache);

  std::printf("\nclusters (%zu):\n", result.clustering.cluster_count);
  const auto clusters = result.clustering.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    std::printf("  cluster %zu:", c + 1);
    for (auto id : clusters[c]) std::printf(" %d", id);
    std::printf("   -> keep:");
    for (auto id : result.selection.per_cluster[c]) std::printf(" %d", id);
    std::printf("\n");
  }
  std::printf("\nreduced %s-order model over %zu sensors:\n",
              config.order == sysid::ModelOrder::kFirst ? "first" : "second",
              result.reduced_model.state_count());
  std::printf("  spectral radius: %.4f\n",
              result.reduced_model.spectral_radius_bound());
  std::printf("  validation pooled RMS (own sensors): %.3f degC\n",
              result.reduced_eval.pooled_rms);
  std::printf("  cluster-mean 99th-pct error: %.3f degC\n",
              result.cluster_mean_errors.percentile(99.0));

  const auto seeds = args.get_long("sweep", 0);
  if (seeds > 0) {
    std::vector<core::SweepCase> cases;
    for (long s = 1; s <= seeds; ++s) {
      const auto seed = static_cast<std::uint64_t>(s);
      cases.push_back({core::SelectionStrategy::kStratifiedNearMean, seed});
      cases.push_back({core::SelectionStrategy::kStratifiedRandom, seed});
      cases.push_back({core::SelectionStrategy::kSimpleRandom, seed});
    }
    if (!sets.thermostats.empty()) {
      cases.push_back({core::SelectionStrategy::kThermostats, 1});
    }
    const auto sweep = core::run_strategy_sweep(
        config, cases, trace, schedule, split, sets.sensors, sets.inputs,
        sets.thermostats, &cache);
    std::printf("\nstrategy sweep (%zu cases, %ld seeds):\n", cases.size(),
                seeds);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      std::printf("  %-22s seed %-3llu  pooled RMS %.3f  p99 %.3f\n",
                  strategy_name(cases[i].strategy),
                  static_cast<unsigned long long>(cases[i].seed),
                  sweep[i].reduced_eval.pooled_rms,
                  sweep[i].cluster_mean_errors.percentile(99.0));
    }
    const auto totals = cache.totals();
    std::printf("stage cache: %zu hits / %zu misses (%zu artifacts)\n",
                totals.hits, totals.misses, cache.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "analyze") return cmd_analyze(args);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
