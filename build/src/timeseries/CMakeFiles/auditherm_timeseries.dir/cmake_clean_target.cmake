file(REMOVE_RECURSE
  "libauditherm_timeseries.a"
)
