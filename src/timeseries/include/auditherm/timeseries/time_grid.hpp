#pragma once

/// \file time_grid.hpp
/// Uniform sampling-time grid for the auditorium traces.
///
/// Time is measured in minutes from the dataset epoch (the paper's trace
/// starts Jan 31, 2013 00:00; ours starts at simulated day 0, 00:00).
/// A TimeGrid maps sample indices k to wall-clock minutes, which is what
/// the mode filter (occupied 6:00-21:00 vs unoccupied) operates on.

#include <cstddef>
#include <cstdint>
#include <string>

namespace auditherm::timeseries {

/// Minutes since the dataset epoch.
using Minutes = std::int64_t;

inline constexpr Minutes kMinutesPerHour = 60;
inline constexpr Minutes kMinutesPerDay = 24 * kMinutesPerHour;

/// Day index (0-based) containing time `t`.
[[nodiscard]] constexpr std::int64_t day_of(Minutes t) noexcept {
  return t >= 0 ? t / kMinutesPerDay : (t - kMinutesPerDay + 1) / kMinutesPerDay;
}

/// Minute within the day, in [0, 1440).
[[nodiscard]] constexpr Minutes minute_of_day(Minutes t) noexcept {
  const Minutes m = t % kMinutesPerDay;
  return m >= 0 ? m : m + kMinutesPerDay;
}

/// Render "d<day> HH:MM" for logs and bench output.
[[nodiscard]] std::string format_time(Minutes t);

/// Uniformly spaced sampling grid: sample k is at start + k * step.
class TimeGrid {
 public:
  TimeGrid() = default;

  /// Throws std::invalid_argument when step <= 0.
  TimeGrid(Minutes start, Minutes step, std::size_t count);

  [[nodiscard]] Minutes start() const noexcept { return start_; }
  [[nodiscard]] Minutes step() const noexcept { return step_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Time of sample k; throws std::out_of_range.
  [[nodiscard]] Minutes at(std::size_t k) const;

  /// Time of sample k, unchecked.
  [[nodiscard]] Minutes operator[](std::size_t k) const noexcept {
    return start_ + static_cast<Minutes>(k) * step_;
  }

  /// Time one step past the final sample.
  [[nodiscard]] Minutes end() const noexcept {
    return start_ + static_cast<Minutes>(count_) * step_;
  }

  /// Index of the first sample at or after time `t`, clamped to [0, size()].
  [[nodiscard]] std::size_t index_at_or_after(Minutes t) const noexcept;

  friend bool operator==(const TimeGrid&, const TimeGrid&) = default;

 private:
  Minutes start_ = 0;
  Minutes step_ = 1;
  std::size_t count_ = 0;
};

}  // namespace auditherm::timeseries
