# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("linalg")
subdirs("timeseries")
subdirs("hvac")
subdirs("sim")
subdirs("sysid")
subdirs("clustering")
subdirs("selection")
subdirs("control")
subdirs("core")
