file(REMOVE_RECURSE
  "CMakeFiles/test_multi_trace.dir/test_multi_trace.cpp.o"
  "CMakeFiles/test_multi_trace.dir/test_multi_trace.cpp.o.d"
  "test_multi_trace"
  "test_multi_trace.pdb"
  "test_multi_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
