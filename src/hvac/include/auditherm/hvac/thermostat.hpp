#pragma once

/// \file thermostat.hpp
/// Thermostat feedback controller for the VAV boxes.
///
/// The building's HVAC drives its VAV dampers from two wall thermostats.
/// We model that loop as a PI controller on the mean thermostat reading:
/// too warm -> more (cool) airflow. In unoccupied mode the controller
/// commands the off-mode minimum regardless of temperature, matching the
/// paper's "maintains a low level of air flow" description.

#include <vector>

#include "auditherm/hvac/schedule.hpp"
#include "auditherm/hvac/vav.hpp"

namespace auditherm::hvac {

/// Controller gains, setpoint and supply-air program.
struct ThermostatConfig {
  double setpoint_c = 20.8;     ///< occupied-mode target temperature
  double deadband_c = 0.3;      ///< no modulation within +/- deadband
  double kp = 0.30;             ///< proportional gain (m^3/s per K)
  double ki = 0.002;            ///< integral gain (m^3/s per K*s)
  /// Occupied-mode ventilation floor per VAV; cooling demand modulates the
  /// dampers above this, heating engages reheat AT this flow.
  double base_flow_m3_s = 0.08;
  double integrator_limit = 0.5;///< anti-windup clamp on the I-term (m^3/s)
  double cooling_supply_c = 13.0;  ///< discharge air when cooling
  double heating_supply_c = 28.0;  ///< discharge air when heating (reheat)
  double neutral_supply_c = 18.0;  ///< tempered air inside the deadband
};

/// PI thermostat loop commanding a bank of VAV boxes.
class ThermostatController {
 public:
  /// Throws std::invalid_argument on non-positive gains or base flow < 0.
  explicit ThermostatController(const ThermostatConfig& config,
                                Schedule schedule = {});

  [[nodiscard]] const ThermostatConfig& config() const noexcept {
    return config_;
  }

  /// Compute and apply flow commands for all boxes.
  ///
  /// `thermostat_temps_c` are the current thermostat readings (their mean
  /// drives the loop); `t` selects the mode via the schedule; `dt_s`
  /// advances the integral term. Throws std::invalid_argument on empty
  /// readings or dt <= 0.
  void update(std::vector<VavBox>& boxes,
              const std::vector<double>& thermostat_temps_c,
              timeseries::Minutes t, double dt_s);

  /// Supply-air temperature selected by the last update(): the cooling,
  /// heating or neutral discharge temperature.
  [[nodiscard]] double supply_temp_c() const noexcept { return supply_temp_; }

  /// Current integral-term contribution (m^3/s), for diagnostics.
  [[nodiscard]] double integrator() const noexcept { return integral_; }

  /// Reset controller state (integrator and supply selection).
  void reset() noexcept {
    integral_ = 0.0;
    supply_temp_ = config_.neutral_supply_c;
  }

 private:
  ThermostatConfig config_;
  Schedule schedule_;
  double integral_ = 0.0;
  double supply_temp_ = 18.0;
};

}  // namespace auditherm::hvac
