// Tests for the Kalman filter on identified thermal models.

#include "auditherm/sysid/kalman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace sysid = auditherm::sysid;
namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

namespace {

/// Two coupled states, one input.
sysid::ThermalModel coupled_model() {
  Matrix a{{0.85, 0.10}, {0.10, 0.85}};
  Matrix b{{0.4}, {0.1}};
  return sysid::ThermalModel(sysid::ModelOrder::kFirst, a, {}, b, {1, 2},
                             {101});
}

}  // namespace

TEST(Kalman, RequiresResetBeforeUse) {
  sysid::KalmanFilter kf(coupled_model());
  EXPECT_FALSE(kf.initialized());
  EXPECT_THROW(kf.predict({1.0}), std::invalid_argument);
  EXPECT_THROW(kf.update({0}, {20.0}), std::invalid_argument);
}

TEST(Kalman, ResetSetsStateAndVariance) {
  sysid::KalmanFilter kf(coupled_model());
  kf.reset({20.0, 21.0});
  EXPECT_TRUE(kf.initialized());
  EXPECT_EQ(kf.temperatures(), (Vector{20.0, 21.0}));
  for (double v : kf.temperature_variances()) {
    EXPECT_DOUBLE_EQ(v, sysid::KalmanOptions{}.initial_variance);
  }
}

TEST(Kalman, PredictFollowsTheModel) {
  sysid::KalmanFilter kf(coupled_model());
  kf.reset({20.0, 20.0});
  kf.predict({1.0});
  const auto expected =
      coupled_model().predict_next({20.0, 20.0}, {}, {1.0});
  const auto temps = kf.temperatures();
  EXPECT_NEAR(temps[0], expected[0], 1e-12);
  EXPECT_NEAR(temps[1], expected[1], 1e-12);
  // Prediction inflates uncertainty.
  for (double v : kf.temperature_variances()) {
    EXPECT_GT(v, 0.0);
  }
}

TEST(Kalman, UpdateShrinksVarianceAndMovesEstimate) {
  sysid::KalmanFilter kf(coupled_model());
  kf.reset({20.0, 20.0});
  kf.predict({0.0});
  const auto var_before = kf.temperature_variances();
  kf.update({0}, {22.0});
  const auto var_after = kf.temperature_variances();
  EXPECT_LT(var_after[0], var_before[0]);
  // The unmeasured, correlated state also improves.
  EXPECT_LT(var_after[1], var_before[1]);
  EXPECT_GT(kf.temperatures()[0], 20.0);
}

TEST(Kalman, TracksASimulatedSystemFromPartialMeasurements) {
  // Simulate the true system with process noise; measure only state 0;
  // the filter's estimate of the UNMEASURED state 1 must beat dead
  // reckoning (predict-only).
  Matrix a{{0.75, 0.20}, {0.20, 0.75}};  // strong coupling: x0 informs x1
  Matrix b{{0.4}, {0.1}};
  const sysid::ThermalModel model(sysid::ModelOrder::kFirst, a, {}, b,
                                  {1, 2}, {101});
  std::mt19937_64 rng(7);
  std::normal_distribution<double> w(0.0, 0.1);
  std::normal_distribution<double> v(0.0, 0.15);

  sysid::KalmanOptions options;
  options.process_noise = 0.01;       // matches w
  options.measurement_noise = 0.0225; // matches v
  sysid::KalmanFilter kf(model, options);
  kf.reset({18.0, 23.0});  // deliberately wrong initial guess
  sysid::KalmanFilter dead(model, options);
  dead.reset({18.0, 23.0});

  Vector truth{20.0, 21.0};
  double kf_sq = 0.0, dead_sq = 0.0;
  const int steps = 200;
  for (int k = 0; k < steps; ++k) {
    const double u = std::sin(0.1 * k);
    truth = model.predict_next(truth, {}, {u});
    truth[0] += w(rng);
    truth[1] += w(rng);

    kf.predict({u});
    kf.update({0}, {truth[0] + v(rng)});
    dead.predict({u});

    const double kf_err = kf.temperatures()[1] - truth[1];
    const double dead_err = dead.temperatures()[1] - truth[1];
    if (k > 20) {  // after burn-in
      kf_sq += kf_err * kf_err;
      dead_sq += dead_err * dead_err;
    }
  }
  EXPECT_LT(kf_sq, dead_sq);
  EXPECT_LT(std::sqrt(kf_sq / (steps - 21)), 0.6);
}

TEST(Kalman, SecondOrderAugmentationConsistent) {
  Matrix a{{0.9}};
  Matrix a2{{-0.2}};
  Matrix b{{0.5}};
  sysid::ThermalModel model(sysid::ModelOrder::kSecond, a, a2, b, {1},
                            {101});
  sysid::KalmanFilter kf(model);
  kf.reset({20.0});
  // Two noiseless predicts must match the model's own simulation.
  kf.predict({1.0});
  kf.predict({0.5});
  Matrix inputs(2, 1);
  inputs(0, 0) = 1.0;
  inputs(1, 0) = 0.5;
  const auto sim = model.simulate({20.0}, {0.0}, inputs);
  EXPECT_NEAR(kf.temperatures()[0], sim(1, 0), 1e-10);
}

TEST(Kalman, Validation) {
  sysid::KalmanOptions bad;
  bad.process_noise = 0.0;
  EXPECT_THROW(sysid::KalmanFilter(coupled_model(), bad),
               std::invalid_argument);

  sysid::KalmanFilter kf(coupled_model());
  EXPECT_THROW(kf.reset({20.0}), std::invalid_argument);
  kf.reset({20.0, 20.0});
  EXPECT_THROW(kf.predict({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(kf.update({0, 1}, {20.0}), std::invalid_argument);
  EXPECT_THROW(kf.update({5}, {20.0}), std::invalid_argument);
  kf.update({}, {});  // empty update is a no-op
}
