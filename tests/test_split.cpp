// Tests for usable-day accounting and train/validation splitting.

#include "auditherm/core/split.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace core = auditherm::core;
namespace ts = auditherm::timeseries;
namespace hvac = auditherm::hvac;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Six days on a 30-min grid with one channel; days 2 and 4 have holes in
/// the occupied window (day 2 fully missing, day 4 half missing).
MultiTrace make_trace() {
  MultiTrace trace(TimeGrid(0, 30, 6 * 48), {1});
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const auto t = trace.grid()[k];
    const auto day = ts::day_of(t);
    if (day == 2) continue;  // fully missing day
    if (day == 4 && ts::minute_of_day(t) >= 6 * 60 &&
        ts::minute_of_day(t) < 14 * 60) {
      continue;  // more than half the occupied window missing
    }
    trace.set(k, 0, 20.0);
  }
  return trace;
}

}  // namespace

TEST(Split, DayModeCoverage) {
  const auto trace = make_trace();
  hvac::Schedule schedule;
  EXPECT_DOUBLE_EQ(core::day_mode_coverage(trace, {1}, schedule,
                                           hvac::Mode::kOccupied, 0),
                   1.0);
  EXPECT_DOUBLE_EQ(core::day_mode_coverage(trace, {1}, schedule,
                                           hvac::Mode::kOccupied, 2),
                   0.0);
  const double partial = core::day_mode_coverage(trace, {1}, schedule,
                                                 hvac::Mode::kOccupied, 4);
  EXPECT_GT(partial, 0.3);
  EXPECT_LT(partial, 0.7);
}

TEST(Split, UsableDaysExcludeFailures) {
  const auto trace = make_trace();
  const auto split = core::split_dataset(trace, {1}, hvac::Schedule{},
                                         hvac::Mode::kOccupied, 0.6);
  EXPECT_EQ(split.usable_days, (std::vector<std::size_t>{0, 1, 3, 5}));
}

TEST(Split, ChronologicalHalves) {
  const auto trace = make_trace();
  const auto split = core::split_dataset(trace, {1}, hvac::Schedule{},
                                         hvac::Mode::kOccupied, 0.6);
  EXPECT_EQ(split.train_days, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(split.validation_days, (std::vector<std::size_t>{3, 5}));
}

TEST(Split, MasksMatchDaySets) {
  const auto trace = make_trace();
  const auto split = core::split_dataset(trace, {1}, hvac::Schedule{},
                                         hvac::Mode::kOccupied, 0.6);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const auto day = static_cast<std::size_t>(ts::day_of(trace.grid()[k]));
    const bool in_train = day == 0 || day == 1;
    const bool in_valid = day == 3 || day == 5;
    EXPECT_EQ(split.train_mask[k], in_train);
    EXPECT_EQ(split.validation_mask[k], in_valid);
  }
}

TEST(Split, TrainFractionRespected) {
  const auto trace = make_trace();
  const auto split = core::split_dataset(trace, {1}, hvac::Schedule{},
                                         hvac::Mode::kOccupied, 0.6, 0.75);
  EXPECT_EQ(split.train_days.size(), 3u);
  EXPECT_EQ(split.validation_days.size(), 1u);
}

TEST(Split, Validation) {
  const auto trace = make_trace();
  EXPECT_THROW((void)core::split_dataset(trace, {1}, hvac::Schedule{},
                                         hvac::Mode::kOccupied, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)core::split_dataset(trace, {1}, hvac::Schedule{},
                                         hvac::Mode::kOccupied, 0.5, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)core::split_dataset(MultiTrace{}, {1}, hvac::Schedule{},
                                         hvac::Mode::kOccupied),
               std::invalid_argument);
}

TEST(Split, AndMasks) {
  EXPECT_EQ(core::and_masks({true, true, false}, {true, false, false}),
            (std::vector<bool>{true, false, false}));
  EXPECT_THROW((void)core::and_masks({true}, {true, false}),
               std::invalid_argument);
}

TEST(Split, DayMask) {
  TimeGrid grid(0, ts::kMinutesPerDay / 2, 6);  // 2 samples per day, 3 days
  const auto mask = core::day_mask(grid, {1});
  EXPECT_EQ(mask, (std::vector<bool>{false, false, true, true, false, false}));
}
