#pragma once

/// \file occupancy_estimation.hpp
/// Occupancy estimation from the HVAC's CO2 sensor.
///
/// The paper counts occupants by manual inspection of webcam photos and
/// names automation as future work. The HVAC already records CO2 and the
/// VAV airflows; a calibrated mass-balance inversion recovers the
/// occupant count with no camera at all:
///
///   V dC/dt = g * o(t) - Q(t) (C - C_out)
///   =>  o(t) = [ V dC/dt + Q(t) (C - C_out) ] / g
///
/// The effective volume V, per-person generation g and outdoor level
/// C_out are calibrated from a training window with known occupancy by
/// least squares (they absorb sensor placement and mixing imperfections,
/// so calibrated values beat physical constants).

#include <vector>

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::sysid {

/// Channel roles for the estimator.
struct Co2Channels {
  timeseries::ChannelId co2 = 114;
  std::vector<timeseries::ChannelId> vav_flows{101, 102, 103, 104};
  timeseries::ChannelId occupancy = 110;  ///< training labels
};

/// Calibrated CO2 mass-balance occupancy estimator.
class Co2OccupancyEstimator {
 public:
  /// Construct with channel roles; call calibrate() before estimate().
  explicit Co2OccupancyEstimator(Co2Channels channels = {});

  /// Fit (V/g, Q-scale/g, C_out) by least squares on a training trace
  /// with known occupancy. Uses transitions where CO2, flows and the
  /// occupancy label are valid at consecutive rows. Throws
  /// std::runtime_error with fewer than 32 usable transitions,
  /// std::invalid_argument when channels are missing.
  void calibrate(const timeseries::TraceView& training);

  [[nodiscard]] bool calibrated() const noexcept { return calibrated_; }

  /// Calibrated parameters (for inspection/tests): occupancy is estimated
  /// as  o = a * dC/dt + b * Q * (C - c)  with dC/dt in ppm/s and Q in
  /// m^3/s.
  [[nodiscard]] double volume_over_generation() const noexcept { return a_; }
  [[nodiscard]] double flow_gain() const noexcept { return b_; }
  [[nodiscard]] double outdoor_ppm() const noexcept { return c_; }

  /// Estimate the occupant count for every row of `trace`; NaN where the
  /// needed channels are missing or no predecessor row exists. Estimates
  /// are clamped below at zero and smoothed with a short trailing mean
  /// (the derivative term is noisy at 30-minute sampling).
  /// Throws std::logic_error when not calibrated.
  [[nodiscard]] linalg::Vector estimate(
      const timeseries::TraceView& trace) const;

 private:
  Co2Channels channels_;
  double a_ = 0.0;  ///< V / g, seconds
  double b_ = 0.0;  ///< 1 / g scale on Q (C - C_out)
  double c_ = 420.0;
  bool calibrated_ = false;
};

/// Mean absolute error between an occupancy estimate and the labeled
/// channel over rows where both exist; NaN rows skipped. Throws
/// std::runtime_error when no rows overlap.
[[nodiscard]] double occupancy_mae(const timeseries::TraceView& trace,
                                   timeseries::ChannelId occupancy_channel,
                                   const linalg::Vector& estimate);

}  // namespace auditherm::sysid
