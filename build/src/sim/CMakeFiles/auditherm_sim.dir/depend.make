# Empty dependencies file for auditherm_sim.
# This may be replaced when dependencies are built.
