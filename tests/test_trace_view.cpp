// Tests for the zero-copy TraceView data path: grid/NaN semantics of the
// view operations, bitwise view-vs-copy equivalence across every consumer
// that was migrated to views (trace_stats, clustering, sysid, selection,
// fingerprinting), zero-copy accounting via the timeseries.bytes_copied
// counter, coverage() degeneracy pins, and — under ASan — detection of a
// view outliving its trace.

#include "auditherm/timeseries/trace_view.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "auditherm/clustering/baselines.hpp"
#include "auditherm/clustering/similarity.hpp"
#include "auditherm/core/stage_cache.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/selection/evaluation.hpp"
#include "auditherm/selection/gp_placement.hpp"
#include "auditherm/selection/strategies.hpp"
#include "auditherm/selection/variance_placement.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/evaluation.hpp"
#include "auditherm/timeseries/multi_trace.hpp"
#include "auditherm/timeseries/trace_stats.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define AUDITHERM_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AUDITHERM_TEST_ASAN 1
#endif
#endif

namespace clustering = auditherm::clustering;
namespace core = auditherm::core;
namespace hvac = auditherm::hvac;
namespace linalg = auditherm::linalg;
namespace obs = auditherm::obs;
namespace selection = auditherm::selection;
namespace sysid = auditherm::sysid;
namespace ts = auditherm::timeseries;

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Bit pattern of a double; two NaNs from the same source sample compare
/// equal, which is exactly the bitwise-identity the view path promises.
std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bitwise(double a, double b, const std::string& what) {
  EXPECT_EQ(bits(a), bits(b)) << what << ": " << a << " vs " << b;
}

void expect_bitwise(const linalg::Vector& a, const linalg::Vector& b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bitwise(a[i], b[i], what + "[" + std::to_string(i) + "]");
  }
}

void expect_bitwise(const linalg::Matrix& a, const linalg::Matrix& b,
                    const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      expect_bitwise(a(i, j), b(i, j),
                     what + "(" + std::to_string(i) + "," +
                         std::to_string(j) + ")");
    }
  }
}

/// The core contract: a view and the materialized trace it is equivalent
/// to hold identical grids, channels, and sample bits.
void expect_view_equals_trace(const ts::TraceView& view,
                              const ts::MultiTrace& trace,
                              const std::string& what) {
  ASSERT_EQ(view.size(), trace.size()) << what;
  ASSERT_EQ(view.channel_count(), trace.channel_count()) << what;
  EXPECT_EQ(view.channels(), trace.channels()) << what;
  EXPECT_EQ(view.grid().start(), trace.grid().start()) << what;
  EXPECT_EQ(view.grid().step(), trace.grid().step()) << what;
  EXPECT_EQ(view.grid().size(), trace.grid().size()) << what;
  for (std::size_t k = 0; k < view.size(); ++k) {
    for (std::size_t c = 0; c < view.channel_count(); ++c) {
      expect_bitwise(view.value(k, c), trace.value(k, c),
                     what + " value(" + std::to_string(k) + "," +
                         std::to_string(c) + ")");
      EXPECT_EQ(view.valid(k, c), trace.valid(k, c)) << what;
    }
  }
}

/// Random gapped trace: `rows` x `channels.size()`, each sample missing
/// with probability `gap_p`.
ts::MultiTrace random_trace(std::mt19937_64& rng, std::size_t rows,
                            const std::vector<ts::ChannelId>& channels,
                            double gap_p) {
  ts::MultiTrace trace(ts::TimeGrid(0, 30, rows), channels);
  std::normal_distribution<double> value(20.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t k = 0; k < rows; ++k) {
    for (std::size_t c = 0; c < channels.size(); ++c) {
      trace.set(k, c, coin(rng) < gap_p ? kNaN : value(rng));
    }
  }
  return trace;
}

/// Sum of the timeseries.bytes_copied counter in a recorder's snapshot.
std::uint64_t bytes_copied(const obs::Recorder& recorder) {
  for (const auto& [name, value] : recorder.metrics().snapshot().counters) {
    if (name == "timeseries.bytes_copied") return value;
  }
  return 0;
}

/// Deterministic "hall" trace for the heavyweight consumers: sensors in
/// two thermal groups plus an input block [h; o; l; w], mild noise, a few
/// NaN gaps. Rich enough for similarity graphs, GP placement, and sysid.
struct HallData {
  ts::MultiTrace trace;
  std::vector<ts::ChannelId> sensors;
  std::vector<ts::ChannelId> inputs;
};

HallData make_hall(std::size_t days) {
  const std::size_t per_day = 48;  // 30-minute samples
  const std::size_t rows = days * per_day;
  const std::vector<ts::ChannelId> sensors{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<ts::ChannelId> inputs{101, 102, 103, 104};
  std::vector<ts::ChannelId> all = sensors;
  all.insert(all.end(), inputs.begin(), inputs.end());
  ts::MultiTrace trace(ts::TimeGrid(0, 30, rows), all);
  std::mt19937_64 rng(99);
  std::normal_distribution<double> noise(0.0, 0.05);
  for (std::size_t k = 0; k < rows; ++k) {
    const double t = static_cast<double>(k) / per_day;
    const double warm = 22.0 + 2.0 * std::sin(2.0 * M_PI * t);
    const double cool = 20.0 + 1.0 * std::sin(2.0 * M_PI * t + 0.8);
    for (std::size_t c = 0; c < sensors.size(); ++c) {
      const double base = c < 4 ? warm : cool;
      trace.set(k, c, base + 0.1 * static_cast<double>(c) + noise(rng));
    }
    trace.set(k, 8, 18.0 + 0.5 * std::sin(2.0 * M_PI * t));    // h
    trace.set(k, 9, k % per_day >= 12 && k % per_day < 42 ? 60.0 : 0.0);
    trace.set(k, 10, 0.3 + 0.1 * std::cos(2.0 * M_PI * t));    // l
    trace.set(k, 11, 10.0 + 5.0 * std::sin(2.0 * M_PI * t / 7.0));
  }
  // A few gaps so the pairwise-complete paths are exercised.
  trace.clear(10, 0);
  trace.clear(11, 0);
  if (rows > 57) trace.clear(57, 5);
  return {std::move(trace), sensors, inputs};
}

}  // namespace

// ---------------------------------------------------------------------------
// View-operation semantics
// ---------------------------------------------------------------------------

TEST(TraceView, WholeTraceViewMatchesSource) {
  std::mt19937_64 rng(1);
  const auto trace = random_trace(rng, 20, {3, 1, 7}, 0.2);
  const ts::TraceView view(trace);
  expect_view_equals_trace(view, trace, "whole-trace view");
  EXPECT_EQ(view.channel_index(7), trace.channel_index(7));
  EXPECT_EQ(view.channel_index(99), std::nullopt);
  EXPECT_EQ(view.require_channel(1), 1u);
  EXPECT_THROW((void)view.require_channel(99), std::invalid_argument);
}

TEST(TraceView, SelectChannelsMatchesMaterialized) {
  std::mt19937_64 rng(2);
  const auto trace = random_trace(rng, 15, {3, 1, 7, 4}, 0.15);
  const std::vector<ts::ChannelId> subset{7, 3};
  expect_view_equals_trace(ts::TraceView(trace).select_channels(subset),
                           trace.select_channels(subset), "select_channels");
  EXPECT_THROW((void)ts::TraceView(trace).select_channels({3, 99}),
               std::invalid_argument);
  EXPECT_THROW((void)ts::TraceView(trace).select_channels({3, 3}),
               std::invalid_argument);
}

TEST(TraceView, SliceRowsAdvancesGridLikeMaterialized) {
  std::mt19937_64 rng(3);
  const auto trace = random_trace(rng, 24, {1, 2}, 0.1);
  expect_view_equals_trace(ts::TraceView(trace).slice_rows(5, 17),
                           trace.slice_rows(5, 17), "slice_rows");
  // Empty slice is legal and yields an empty grid at the advanced start.
  const auto empty = ts::TraceView(trace).slice_rows(4, 4);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.grid().start(), trace.grid().start() + 4 * 30);
  EXPECT_THROW((void)ts::TraceView(trace).slice_rows(5, 30),
               std::out_of_range);
  EXPECT_THROW((void)ts::TraceView(trace).slice_rows(9, 5),
               std::out_of_range);
}

TEST(TraceView, FilterRowsReindexesLikeMaterialized) {
  std::mt19937_64 rng(4);
  const auto trace = random_trace(rng, 12, {1, 2, 3}, 0.25);
  std::vector<bool> keep(12, false);
  for (std::size_t k = 0; k < 12; k += 3) keep[k] = true;
  expect_view_equals_trace(ts::TraceView(trace).filter_rows(keep),
                           trace.filter_rows(keep), "filter_rows");
  EXPECT_THROW((void)ts::TraceView(trace).filter_rows(std::vector<bool>(5)),
               std::invalid_argument);
}

TEST(TraceView, OperationsComposeLikeMaterializedChain) {
  std::mt19937_64 rng(5);
  const auto trace = random_trace(rng, 30, {9, 4, 6, 2, 8}, 0.2);
  std::vector<bool> keep(20, false);
  for (std::size_t k = 0; k < 20; ++k) keep[k] = (k % 2 == 0);
  const auto view = ts::TraceView(trace)
                        .select_channels({8, 4, 6})
                        .slice_rows(3, 23)
                        .filter_rows(keep)
                        .select_channels({6, 8});
  const auto copy = trace.select_channels({8, 4, 6})
                        .slice_rows(3, 23)
                        .filter_rows(keep)
                        .select_channels({6, 8});
  expect_view_equals_trace(view, copy, "composed chain");
  expect_view_equals_trace(ts::TraceView(view.materialize()), copy,
                           "materialized chain");
}

// ---------------------------------------------------------------------------
// coverage() degeneracy (regression pins: degenerate traces are defined
// as 0.0, never a 0/0)
// ---------------------------------------------------------------------------

TEST(TraceView, CoverageOfDegenerateViewsIsZero) {
  const ts::MultiTrace zero_rows(ts::TimeGrid(0, 30, 0), {1, 2});
  EXPECT_EQ(zero_rows.coverage(), 0.0);
  EXPECT_EQ(ts::TraceView(zero_rows).coverage(), 0.0);

  const ts::MultiTrace zero_channels(ts::TimeGrid(0, 30, 10), {});
  EXPECT_EQ(zero_channels.coverage(), 0.0);
  EXPECT_EQ(ts::TraceView(zero_channels).coverage(), 0.0);

  EXPECT_EQ(ts::TraceView().coverage(), 0.0);

  std::mt19937_64 rng(6);
  const auto trace = random_trace(rng, 8, {1, 2}, 0.0);
  EXPECT_EQ(trace.coverage(), 1.0);
  // Empty row mask and empty channel subset both degenerate to 0.0.
  EXPECT_EQ(
      ts::TraceView(trace).filter_rows(std::vector<bool>(8, false)).coverage(),
      0.0);
  EXPECT_EQ(trace.filter_rows(std::vector<bool>(8, false)).coverage(), 0.0);
  EXPECT_EQ(ts::TraceView(trace).select_channels({}).coverage(), 0.0);
  EXPECT_EQ(ts::TraceView(trace).slice_rows(3, 3).coverage(), 0.0);
}

// ---------------------------------------------------------------------------
// Property sweep: ≥50 random traces, random view chains, every light
// consumer bitwise identical on view vs materialized copy
// ---------------------------------------------------------------------------

TEST(TraceViewProperty, RandomViewChainsMatchMaterializedEverywhere) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int iteration = 0; iteration < 60; ++iteration) {
    // Edge-case iterations: single row, empty mask, all-gaps.
    const bool single_row = iteration % 13 == 3;
    const bool empty_mask = iteration % 11 == 5;
    const bool all_gaps = iteration % 17 == 9;
    const std::size_t rows =
        single_row ? 1 : 2 + static_cast<std::size_t>(rng() % 38);
    const std::size_t n_channels = 2 + static_cast<std::size_t>(rng() % 6);
    std::vector<ts::ChannelId> channels(n_channels);
    for (std::size_t c = 0; c < n_channels; ++c) {
      channels[c] = static_cast<ts::ChannelId>(10 * (c + 1) + c % 3);
    }
    const double gap_p = all_gaps ? 1.0 : coin(rng) * 0.4;
    const auto trace = random_trace(rng, rows, channels, gap_p);

    // A random chain of up to three view operations, mirrored on the
    // materialized side.
    ts::TraceView view(trace);
    ts::MultiTrace copy = trace;
    const int ops = static_cast<int>(rng() % 4);
    for (int op = 0; op < ops; ++op) {
      switch (rng() % 3) {
        case 0: {  // channel subset (shuffled order, size >= 1)
          auto ids = copy.channels();
          std::shuffle(ids.begin(), ids.end(), rng);
          ids.resize(1 + rng() % ids.size());
          view = view.select_channels(ids);
          copy = copy.select_channels(ids);
          break;
        }
        case 1: {  // row range
          const std::size_t first = rng() % (copy.size() + 1);
          const std::size_t last =
              first + rng() % (copy.size() - first + 1);
          view = view.slice_rows(first, last);
          copy = copy.slice_rows(first, last);
          break;
        }
        default: {  // row mask (possibly empty)
          std::vector<bool> keep(copy.size());
          for (std::size_t k = 0; k < keep.size(); ++k) {
            keep[k] = !empty_mask && coin(rng) < 0.6;
          }
          view = view.filter_rows(keep);
          copy = copy.filter_rows(keep);
          break;
        }
      }
    }

    const std::string tag = "iteration " + std::to_string(iteration);
    expect_view_equals_trace(view, copy, tag);
    expect_bitwise(view.coverage(), copy.coverage(), tag + " coverage");
    EXPECT_EQ(core::trace_fingerprint(view), core::trace_fingerprint(copy))
        << tag;
    EXPECT_EQ(ts::rows_with_all_valid(view), ts::rows_with_all_valid(copy))
        << tag;
    expect_bitwise(ts::row_mean(view), ts::row_mean(copy), tag + " row_mean");
    expect_bitwise(ts::correlation_matrix(view), ts::correlation_matrix(copy),
                   tag + " correlation");
    expect_bitwise(ts::covariance_matrix(view), ts::covariance_matrix(copy),
                   tag + " covariance");
    expect_bitwise(ts::rms_distance_matrix(view),
                   ts::rms_distance_matrix(copy), tag + " rms_distance");
    expect_bitwise(ts::channel_means(view), ts::channel_means(copy),
                   tag + " channel_means");
    if (view.channel_count() >= 2) {
      const auto ids = view.channels();
      expect_bitwise(ts::pairwise_max_differences(view, ids),
                     ts::pairwise_max_differences(copy, ids),
                     tag + " pairwise_max_differences");
      expect_bitwise(ts::max_abs_difference(view, ids[0], ids[1]),
                     ts::max_abs_difference(copy, ids[0], ids[1]),
                     tag + " max_abs_difference");
      expect_bitwise(ts::row_mean(view, {ids[0], ids[1]}),
                     ts::row_mean(copy, {ids[0], ids[1]}),
                     tag + " row_mean subset");
      EXPECT_EQ(ts::rows_with_all_valid(view, {ids.back()}),
                ts::rows_with_all_valid(copy, {ids.back()}))
          << tag;
    }
  }
}

// ---------------------------------------------------------------------------
// Heavyweight consumers: clustering, selection, sysid, evaluation — all
// bitwise identical fed a view or the materialized equivalent
// ---------------------------------------------------------------------------

TEST(TraceViewConsumers, ClusteringAndSelectionBitwiseEqual) {
  const auto hall = make_hall(4);
  // Non-trivial view: drop one sensor, drop the first day.
  std::vector<ts::ChannelId> kept = {1, 2, 3, 5, 6, 7, 8};
  for (ts::ChannelId id : hall.inputs) kept.push_back(id);
  const auto view = ts::TraceView(hall.trace)
                        .select_channels(kept)
                        .slice_rows(48, hall.trace.size());
  const auto copy =
      hall.trace.select_channels(kept).slice_rows(48, hall.trace.size());
  const std::vector<ts::ChannelId> sensors{1, 2, 3, 5, 6, 7, 8};

  const auto graph_v = clustering::build_similarity_graph(view, sensors);
  const auto graph_c = clustering::build_similarity_graph(copy, sensors);
  EXPECT_EQ(graph_v.channels, graph_c.channels);
  expect_bitwise(graph_v.weights, graph_c.weights, "similarity weights");
  expect_bitwise(graph_v.sigma_used, graph_c.sigma_used, "sigma_used");

  const auto km_v = clustering::kmeans_trace_cluster(view, sensors, 2);
  const auto km_c = clustering::kmeans_trace_cluster(copy, sensors, 2);
  EXPECT_EQ(km_v.labels, km_c.labels);
  EXPECT_EQ(km_v.cluster_count, km_c.cluster_count);

  const selection::ClusterSets clusters{{1, 2, 3}, {5, 6, 7, 8}};
  EXPECT_EQ(selection::stratified_near_mean(view, clusters).per_cluster,
            selection::stratified_near_mean(copy, clusters).per_cluster);
  EXPECT_EQ(selection::simple_random(view, clusters, 7).per_cluster,
            selection::simple_random(copy, clusters, 7).per_cluster);
  EXPECT_EQ(selection::gp_mutual_information_selection(view, sensors, 2),
            selection::gp_mutual_information_selection(copy, sensors, 2));
  EXPECT_EQ(selection::max_variance_selection(view, sensors, 2),
            selection::max_variance_selection(copy, sensors, 2));

  const selection::Selection sel = selection::stratified_near_mean(view, clusters);
  const auto errors_v =
      selection::evaluate_cluster_mean_prediction(view, clusters, sel);
  const auto errors_c =
      selection::evaluate_cluster_mean_prediction(copy, clusters, sel);
  ASSERT_EQ(errors_v.per_cluster_abs.size(), errors_c.per_cluster_abs.size());
  for (std::size_t c = 0; c < errors_v.per_cluster_abs.size(); ++c) {
    expect_bitwise(errors_v.per_cluster_abs[c], errors_c.per_cluster_abs[c],
                   "cluster-mean errors");
  }
}

TEST(TraceViewConsumers, SysidFitAndEvaluationBitwiseEqual) {
  const auto hall = make_hall(4);
  const auto view = ts::TraceView(hall.trace).slice_rows(0, 96);
  const auto copy = hall.trace.slice_rows(0, 96);
  const std::vector<ts::ChannelId> states{1, 5};

  sysid::ModelEstimator est(states, hall.inputs, sysid::ModelOrder::kSecond);
  const auto model_v = est.fit(view);
  const auto model_c = est.fit(copy);
  expect_bitwise(model_v.a(), model_c.a(), "A");
  expect_bitwise(model_v.a2(), model_c.a2(), "A2");
  expect_bitwise(model_v.b(), model_c.b(), "B");

  const auto summary_v = est.summarize(view);
  const auto summary_c = est.summarize(copy);
  EXPECT_EQ(summary_v.transitions, summary_c.transitions);

  hvac::Schedule schedule;
  std::vector<ts::ChannelId> required = states;
  required.insert(required.end(), hall.inputs.begin(), hall.inputs.end());
  const auto windows_v = sysid::mode_windows(view, schedule,
                                             hvac::Mode::kOccupied, required);
  const auto windows_c = sysid::mode_windows(copy, schedule,
                                             hvac::Mode::kOccupied, required);
  ASSERT_EQ(windows_v.size(), windows_c.size());
  ASSERT_FALSE(windows_v.empty());
  EXPECT_EQ(windows_v, windows_c);

  const sysid::EvaluationOptions eval_opts;
  const auto eval_v =
      sysid::evaluate_prediction(model_v, view, windows_v, eval_opts);
  const auto eval_c =
      sysid::evaluate_prediction(model_c, copy, windows_c, eval_opts);
  EXPECT_EQ(eval_v.window_count, eval_c.window_count);
  expect_bitwise(eval_v.pooled_rms, eval_c.pooled_rms, "pooled_rms");
  expect_bitwise(eval_v.channel_rms, eval_c.channel_rms, "channel_rms");
  expect_bitwise(eval_v.window_channel_rms, eval_c.window_channel_rms,
                 "window_channel_rms");
}

// ---------------------------------------------------------------------------
// Zero-copy accounting: the view path moves no bytes; the materializing
// APIs all count into timeseries.bytes_copied
// ---------------------------------------------------------------------------

TEST(TraceViewBytes, ViewPathCopiesNothing) {
  const auto hall = make_hall(3);
  const std::vector<ts::ChannelId> sensors = hall.sensors;
  obs::Recorder recorder;
  {
    obs::RecorderScope scope(&recorder);
    std::vector<bool> keep(hall.trace.size());
    for (std::size_t k = 0; k < keep.size(); ++k) keep[k] = (k % 2 == 0);
    const auto view = ts::TraceView(hall.trace)
                          .select_channels(sensors)
                          .slice_rows(2, 100)
                          .filter_rows(std::vector<bool>(98, true));
    // The whole refactored read path on top of the view: none of it may
    // materialize. (gp_mutual_information_selection is the regression
    // pin for the old double-materialization.)
    (void)clustering::build_similarity_graph(view, sensors);
    (void)selection::stratified_near_mean(view, {{1, 2, 3, 4}, {5, 6, 7, 8}});
    (void)selection::gp_mutual_information_selection(view, sensors, 2);
    (void)selection::max_variance_selection(view, sensors, 2);
    (void)ts::correlation_matrix(view);
    (void)ts::rows_with_all_valid(view);
    (void)ts::row_mean(view);
    (void)core::trace_fingerprint(view);
    (void)view.coverage();
    (void)keep;
  }
  EXPECT_EQ(bytes_copied(recorder), 0u)
      << "zero-copy view path moved sample bytes";
}

TEST(TraceViewBytes, MaterializingApisAreCounted) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (AUDITHERM_OBS=OFF)";
  }
  const auto hall = make_hall(1);
  obs::Recorder recorder;
  {
    obs::RecorderScope scope(&recorder);
    (void)hall.trace.select_channels({1, 2});
  }
  EXPECT_EQ(bytes_copied(recorder),
            hall.trace.size() * 2 * sizeof(double));

  obs::Recorder recorder2;
  {
    obs::RecorderScope scope(&recorder2);
    const auto view = ts::TraceView(hall.trace).select_channels({1, 2, 3});
    (void)view.materialize();
  }
  EXPECT_EQ(bytes_copied(recorder2),
            hall.trace.size() * 3 * sizeof(double));

  obs::Recorder recorder3;
  {
    obs::RecorderScope scope(&recorder3);
    (void)hall.trace.slice_rows(0, 10);
    (void)hall.trace.filter_rows(
        std::vector<bool>(hall.trace.size(), true));
    (void)hall.trace.channel_series(1);
  }
  EXPECT_GT(bytes_copied(recorder3), 0u);
}

// ---------------------------------------------------------------------------
// Fingerprinting: cache keys are view/copy agnostic
// ---------------------------------------------------------------------------

TEST(TraceViewFingerprint, ViewKeysIdenticallyToMaterialized) {
  std::mt19937_64 rng(8);
  const auto trace = random_trace(rng, 40, {1, 2, 3, 4}, 0.3);
  std::vector<bool> keep(40);
  for (std::size_t k = 0; k < 40; ++k) keep[k] = (k % 3 != 0);

  const auto view =
      ts::TraceView(trace).select_channels({2, 4}).filter_rows(keep);
  const auto copy = trace.select_channels({2, 4}).filter_rows(keep);
  EXPECT_EQ(core::trace_fingerprint(view), core::trace_fingerprint(copy));
  EXPECT_EQ(core::trace_fingerprint(view),
            core::trace_fingerprint(view.materialize()));
  // And the fingerprint still distinguishes different content.
  EXPECT_NE(core::trace_fingerprint(view), core::trace_fingerprint(trace));
}

// ---------------------------------------------------------------------------
// Lifetime: a view outliving its trace is a use-after-free, and ASan
// sees it (the documented ownership rule is enforceable, not advisory)
// ---------------------------------------------------------------------------

TEST(TraceViewLifetimeDeathTest, DanglingViewDiesUnderAsan) {
#if defined(AUDITHERM_TEST_ASAN)
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ts::TraceView dangling;
        {
          ts::MultiTrace local(ts::TimeGrid(0, 30, 4), {1});
          for (std::size_t k = 0; k < 4; ++k) {
            local.set(k, 0, static_cast<double>(k));
          }
          dangling = ts::TraceView(local);
        }
        // The source died; reading through the view must trap.
        volatile double v = dangling.value(0, 0);
        (void)v;
      },
      "AddressSanitizer");
#else
  GTEST_SKIP() << "dangling-view detection requires ASan "
                  "(-DAUDITHERM_SANITIZE=address,undefined)";
#endif
}
