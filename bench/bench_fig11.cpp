// Fig. 11: accuracy of the SIMPLIFIED thermal models — identify a reduced
// second-order model over the selected sensors and measure how well its
// open-loop predictions track the measured cluster means, for SMS / SRS /
// RS across cluster counts.
//
// Paper: models built on SMS/SRS-selected sensors predict the cluster
// means more accurately than RS-based ones, and the error falls as the
// cluster count (hence model size) grows.

#include "bench_common.hpp"

using namespace auditherm;

namespace {

double reduced_model_p99(const sim::AuditoriumDataset& dataset,
                         const core::DataSplit& split,
                         core::SelectionStrategy strategy, std::size_t k,
                         std::uint64_t seed) {
  core::PipelineConfig config;
  config.strategy = strategy;
  config.spectral.cluster_count = k;
  config.selection_seed = seed;
  const core::ThermalModelingPipeline pipeline(config);
  const auto result =
      pipeline.run(dataset.trace, dataset.schedule, split,
                   dataset.wireless_ids(), dataset.input_ids(),
                   dataset.thermostat_ids());
  return result.cluster_mean_errors.percentile(99.0);
}

}  // namespace

int main() {
  bench::print_header("Fig. 11: reduced-model accuracy vs cluster count");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);

  std::printf("%-10s %-10s %-10s %-10s\n", "clusters", "SMS", "SRS", "RS");
  linalg::Vector sms_curve, srs_curve, rs_curve;
  constexpr int kSeeds = 5;  // reduced models are costlier than raw selection
  for (std::size_t k = 2; k <= 8; ++k) {
    const double sms = reduced_model_p99(
        dataset, split, core::SelectionStrategy::kStratifiedNearMean, k, 1);
    double srs = 0.0, rs = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      srs += reduced_model_p99(dataset, split,
                               core::SelectionStrategy::kStratifiedRandom, k,
                               static_cast<std::uint64_t>(seed));
      rs += reduced_model_p99(dataset, split,
                              core::SelectionStrategy::kSimpleRandom, k,
                              static_cast<std::uint64_t>(seed));
    }
    srs /= kSeeds;
    rs /= kSeeds;
    std::printf("%-10zu %-10.3f %-10.3f %-10.3f\n", k, sms, srs, rs);
    sms_curve.push_back(sms);
    srs_curve.push_back(srs);
    rs_curve.push_back(rs);
  }

  std::size_t sms_wins = 0, srs_wins = 0;
  for (std::size_t i = 0; i < sms_curve.size(); ++i) {
    if (sms_curve[i] < rs_curve[i]) ++sms_wins;
    if (srs_curve[i] < rs_curve[i]) ++srs_wins;
  }
  const bool improves = sms_curve.back() < sms_curve.front();
  std::printf("\nshape checks: SMS beats RS at %zu/7 cluster counts | SRS "
              "beats RS at %zu/7 | SMS error falls as clusters grow: %s\n",
              sms_wins, srs_wins, improves ? "yes" : "NO");
  return 0;
}
