#pragma once

/// \file resample.hpp
/// Grid-changing utilities: downsampling a trace to a coarser step and
/// bounded forward-filling of gaps. Real building-management data arrives
/// on mixed cadences (the paper's HVAC portal logs at 10-30 minutes, the
/// wireless sensors report on change), so aligning everything onto one
/// modeling grid is a first-class operation.

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::timeseries {

/// How a downsampling bucket is reduced to one value.
enum class ResampleMethod {
  kMean,  ///< average of the valid samples in the bucket
  kHold,  ///< last valid sample in the bucket (sample-and-hold)
};

/// Downsample `trace` onto a grid with step `factor` times coarser.
/// A bucket with no valid samples stays a gap. Throws
/// std::invalid_argument when factor == 0.
[[nodiscard]] MultiTrace downsample(const MultiTrace& trace,
                                    std::size_t factor,
                                    ResampleMethod method = ResampleMethod::kMean);

/// Fill gaps by carrying the last valid value forward, for at most
/// `max_fill` consecutive rows per gap (0 = unlimited). Leading gaps
/// (before the first observation) stay gaps.
[[nodiscard]] MultiTrace forward_fill(const MultiTrace& trace,
                                      std::size_t max_fill = 0);

}  // namespace auditherm::timeseries
