#include "auditherm/sim/occupancy.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace auditherm::sim {

namespace {

using timeseries::kMinutesPerDay;
using timeseries::Minutes;

struct Slot {
  Minutes start_of_day;
  Minutes duration;
  int min_attendance;
  int max_attendance;
};

// Weekday teaching slots; the Friday noon slot hosts the well-attended
// seminar from the paper's Fig. 2 snapshot.
constexpr Slot kWeekdaySlots[] = {
    {9 * 60, 90, 15, 55},
    {11 * 60, 75, 10, 45},
    {12 * 60 + 0, 90, 20, 60},  // replaced by the seminar on Fridays
    {14 * 60 + 30, 90, 15, 60},
    {16 * 60 + 30, 75, 10, 40},
};
constexpr Slot kEveningSlot = {19 * 60, 90, 10, 50};
constexpr Slot kWeekendSlot = {13 * 60, 120, 5, 25};

}  // namespace

OccupancySchedule::OccupancySchedule(const OccupancyConfig& config,
                                     std::size_t days)
    : config_(config) {
  if (days == 0) throw std::invalid_argument("OccupancySchedule: days == 0");
  if (config.capacity <= 0) {
    throw std::invalid_argument("OccupancySchedule: capacity <= 0");
  }
  for (double p : {config.class_probability, config.evening_probability,
                   config.weekend_probability}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("OccupancySchedule: probability outside [0,1]");
    }
  }
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (std::size_t d = 0; d < days; ++d) {
    const Minutes day_start = static_cast<Minutes>(d) * kMinutesPerDay;
    const int dow = day_of_week(static_cast<std::int64_t>(d));
    const bool weekend = dow == 0 || dow == 6;
    if (weekend) {
      if (coin(rng) < config.weekend_probability) {
        std::uniform_int_distribution<int> att(kWeekendSlot.min_attendance,
                                               kWeekendSlot.max_attendance);
        events_.push_back({day_start + kWeekendSlot.start_of_day,
                           day_start + kWeekendSlot.start_of_day +
                               kWeekendSlot.duration,
                           att(rng)});
      }
      continue;
    }
    for (const Slot& slot : kWeekdaySlots) {
      const bool seminar = dow == 5 && slot.start_of_day == 12 * 60;
      const double p = seminar ? 0.9 : config.class_probability;
      if (coin(rng) >= p) continue;
      int attendance;
      if (seminar) {
        // Popular seminar: near capacity, as in the Fig. 2 snapshot.
        std::uniform_int_distribution<int> att(60, config.capacity);
        attendance = att(rng);
      } else {
        std::uniform_int_distribution<int> att(slot.min_attendance,
                                               slot.max_attendance);
        attendance = att(rng);
      }
      events_.push_back({day_start + slot.start_of_day,
                         day_start + slot.start_of_day + slot.duration,
                         std::min(attendance, config.capacity)});
    }
    if (coin(rng) < config.evening_probability) {
      std::uniform_int_distribution<int> att(kEveningSlot.min_attendance,
                                             kEveningSlot.max_attendance);
      events_.push_back({day_start + kEveningSlot.start_of_day,
                         day_start + kEveningSlot.start_of_day +
                             kEveningSlot.duration,
                         att(rng)});
    }
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.start < b.start; });
}

double OccupancySchedule::occupants_at(timeseries::Minutes t) const noexcept {
  double total = 0.0;
  const double ramp = static_cast<double>(config_.ramp_minutes);
  for (const Event& e : events_) {
    if (t < e.start) break;  // events are sorted by start
    if (t >= e.end + config_.ramp_minutes) continue;
    double factor = 1.0;
    if (ramp > 0.0) {
      if (t < e.start + config_.ramp_minutes) {
        factor = static_cast<double>(t - e.start) / ramp;
      } else if (t >= e.end) {
        factor = 1.0 - static_cast<double>(t - e.end) / ramp;
      }
    }
    total += factor * e.attendance;
  }
  return std::clamp(total, 0.0, static_cast<double>(config_.capacity));
}

double OccupancySchedule::lighting_at(timeseries::Minutes t) const noexcept {
  constexpr Minutes kMargin = 15;
  for (const Event& e : events_) {
    if (t >= e.start - kMargin && t < e.end + kMargin) return 1.0;
  }
  return 0.0;
}

int OccupancySchedule::day_of_week(std::int64_t day) const noexcept {
  return static_cast<int>((day + config_.first_day_of_week) % 7);
}

}  // namespace auditherm::sim
