// Tests for the traditional clustering baselines (direct k-means on
// traces, single-linkage agglomerative).

#include "auditherm/clustering/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace clustering = auditherm::clustering;
namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Two groups of channels following two distinct signals.
MultiTrace two_group_trace() {
  MultiTrace trace(TimeGrid(0, 30, 60), {1, 2, 3, 4, 5, 6});
  for (std::size_t k = 0; k < 60; ++k) {
    const double a = 20.0 + std::sin(0.2 * static_cast<double>(k));
    const double b = 23.0 + std::cos(0.35 * static_cast<double>(k));
    for (std::size_t c = 0; c < 3; ++c) {
      trace.set(k, c, a + 0.01 * static_cast<double>(c));
    }
    for (std::size_t c = 3; c < 6; ++c) {
      trace.set(k, c, b + 0.01 * static_cast<double>(c));
    }
  }
  return trace;
}

}  // namespace

TEST(KMeansBaseline, SeparatesSignalGroups) {
  const auto trace = two_group_trace();
  const auto result =
      clustering::kmeans_trace_cluster(trace, {1, 2, 3, 4, 5, 6}, 2);
  EXPECT_EQ(result.cluster_count, 2u);
  EXPECT_EQ(result.cluster_of(1), result.cluster_of(2));
  EXPECT_EQ(result.cluster_of(1), result.cluster_of(3));
  EXPECT_EQ(result.cluster_of(4), result.cluster_of(5));
  EXPECT_NE(result.cluster_of(1), result.cluster_of(4));
}

TEST(KMeansBaseline, HandlesGapsByImputation) {
  auto trace = two_group_trace();
  for (std::size_t k = 0; k < 15; ++k) trace.clear(k, 0);
  const auto result =
      clustering::kmeans_trace_cluster(trace, {1, 2, 3, 4, 5, 6}, 2);
  EXPECT_EQ(result.cluster_of(1), result.cluster_of(2));
}

TEST(KMeansBaseline, Validation) {
  const auto trace = two_group_trace();
  EXPECT_THROW(
      (void)clustering::kmeans_trace_cluster(trace, {}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)clustering::kmeans_trace_cluster(trace, {1, 2}, 3),
      std::invalid_argument);
  EXPECT_THROW(
      (void)clustering::kmeans_trace_cluster(trace, {1, 2}, 0),
      std::invalid_argument);
}

TEST(SingleLinkage, MergesStrongestEdgesFirst) {
  // 4 vertices: (1,2) strong, (3,4) strong, weak across.
  clustering::SimilarityGraph graph;
  graph.channels = {1, 2, 3, 4};
  graph.weights = auditherm::linalg::Matrix(4, 4);
  const auto set = [&](std::size_t i, std::size_t j, double w) {
    graph.weights(i, j) = w;
    graph.weights(j, i) = w;
  };
  set(0, 1, 0.9);
  set(2, 3, 0.8);
  set(0, 2, 0.2);
  set(1, 3, 0.1);
  const auto result = clustering::single_linkage_cluster(graph, 2);
  EXPECT_EQ(result.cluster_count, 2u);
  EXPECT_EQ(result.cluster_of(1), result.cluster_of(2));
  EXPECT_EQ(result.cluster_of(3), result.cluster_of(4));
  EXPECT_NE(result.cluster_of(1), result.cluster_of(3));
}

TEST(SingleLinkage, ChainsThroughBridges) {
  // The classic failure: a chain 1-2-3-4 of strong edges merges into one
  // cluster even though 1 and 4 are dissimilar; the outlier 5 survives as
  // a singleton.
  clustering::SimilarityGraph graph;
  graph.channels = {1, 2, 3, 4, 5};
  graph.weights = auditherm::linalg::Matrix(5, 5);
  const auto set = [&](std::size_t i, std::size_t j, double w) {
    graph.weights(i, j) = w;
    graph.weights(j, i) = w;
  };
  set(0, 1, 0.9);
  set(1, 2, 0.9);
  set(2, 3, 0.9);
  set(0, 4, 0.05);
  const auto result = clustering::single_linkage_cluster(graph, 2);
  EXPECT_EQ(result.cluster_of(1), result.cluster_of(4));  // chained
  EXPECT_NE(result.cluster_of(1), result.cluster_of(5));  // singleton
}

TEST(SingleLinkage, DisconnectedGraphStopsAtComponents) {
  clustering::SimilarityGraph graph;
  graph.channels = {1, 2, 3};
  graph.weights = auditherm::linalg::Matrix(3, 3);  // no edges at all
  const auto result = clustering::single_linkage_cluster(graph, 1);
  EXPECT_EQ(result.cluster_count, 3u);  // cannot merge further
}

TEST(SingleLinkage, KEqualsNIsIdentity) {
  clustering::SimilarityGraph graph;
  graph.channels = {1, 2, 3};
  graph.weights = auditherm::linalg::Matrix(3, 3, 0.5);
  const auto result = clustering::single_linkage_cluster(graph, 3);
  std::set<std::size_t> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(SingleLinkage, Validation) {
  clustering::SimilarityGraph graph;
  graph.channels = {1, 2};
  graph.weights = auditherm::linalg::Matrix(2, 2);
  EXPECT_THROW((void)clustering::single_linkage_cluster(graph, 0),
               std::invalid_argument);
  EXPECT_THROW((void)clustering::single_linkage_cluster(graph, 5),
               std::invalid_argument);
}
