#pragma once

/// \file trace_view.hpp
/// Zero-copy view over a MultiTrace: a channel subset plus a row range or
/// row mask, preserving TimeGrid semantics and the NaN-gap invariants.
///
/// The pipeline's evaluation repeatedly re-fits models and re-computes
/// similarity over *subsets* of one trace — per strategy, per cluster, per
/// mode — and every MultiTrace::select_channels / slice_rows / filter_rows
/// call deep-copies the samples. A TraceView expresses the same subsets as
/// an index mapping over the source matrix, so the whole read path
/// (trace_stats, clustering, sysid, selection, the pipeline) consumes the
/// data in place. Views compose: select_channels / slice_rows /
/// filter_rows on a view return another view whose grid matches what the
/// equivalent materialized chain would produce, bit for bit.
///
/// Ownership: a view never owns its samples. It is valid only while the
/// MultiTrace it was built from is alive and unmodified in shape; anything
/// that must outlive the source (a cache entry, a stored artifact) calls
/// materialize(). See DESIGN.md §"View ownership and lifetime".
///
/// Derived channels (with_channel) are the one exception to "never owns":
/// an input-plan resolution materializes a column once (e.g. estimated
/// occupancy) and attaches it to the view as a shared_ptr column indexed
/// by *source* row, so every composition (select/slice/filter) keeps
/// reading it through the same row mapping as the base matrix. Views
/// without derived channels are bit-for-bit unchanged in behavior.

#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "auditherm/linalg/matrix_view.hpp"
#include "auditherm/timeseries/time_grid.hpp"

namespace auditherm::timeseries {

class MultiTrace;

/// Identifier of a channel (same alias as multi_trace.hpp declares; the
/// redeclaration keeps this header usable on its own).
using ChannelId = int;

/// Non-owning channel-subset + row-subset view of a MultiTrace.
///
/// Invariant: grid().size() == size(); channel ids are unique; value(k, c)
/// reads exactly the source sample the equivalent materialized trace would
/// hold at (k, c), so every consumer is bitwise identical on either.
class TraceView {
 public:
  /// Empty view (0 rows, 0 channels).
  TraceView() = default;

  /// Whole-trace view. Implicit on purpose: every function taking a
  /// `const TraceView&` keeps accepting a MultiTrace unchanged.
  TraceView(const MultiTrace& trace);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] const TimeGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t size() const noexcept { return grid_.size(); }
  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] const std::vector<ChannelId>& channels() const noexcept {
    return channels_;
  }

  /// Column index of a channel id; std::nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> channel_index(
      ChannelId id) const noexcept;

  /// Column index of a channel id; throws std::invalid_argument when
  /// absent.
  [[nodiscard]] std::size_t require_channel(ChannelId id) const;

  /// Sample of view channel `c` at view row `k` (NaN when missing,
  /// unchecked).
  [[nodiscard]] double value(std::size_t k, std::size_t c) const noexcept {
    const std::size_t col = cols_[c];
    if (col & kDerivedColumn) {
      return (*derived_[col & ~kDerivedColumn])[source_row(k)];
    }
    return base_(source_row(k), col);
  }

  /// True when the sample is present (not NaN).
  [[nodiscard]] bool valid(std::size_t k, std::size_t c) const noexcept;

  /// Source-trace row that view row `k` reads.
  [[nodiscard]] std::size_t source_row(std::size_t k) const noexcept {
    return rows_.empty() ? row_first_ + k : rows_[k];
  }

  /// View restricted to the given channels (order preserved as given);
  /// still zero-copy. Throws std::invalid_argument when a channel is
  /// absent or duplicated.
  [[nodiscard]] TraceView select_channels(
      const std::vector<ChannelId>& ids) const;

  /// View restricted to view rows [first, last); the grid start advances
  /// exactly as MultiTrace::slice_rows would move it. Throws
  /// std::out_of_range when the range exceeds the view.
  [[nodiscard]] TraceView slice_rows(std::size_t first,
                                     std::size_t last) const;

  /// View keeping only view rows where `keep[k]` is true; the grid is
  /// reindexed (rows become contiguous) exactly as
  /// MultiTrace::filter_rows would. Throws std::invalid_argument when
  /// keep.size() != size().
  [[nodiscard]] TraceView filter_rows(const std::vector<bool>& keep) const;

  /// View with an extra derived channel appended. `column` is indexed by
  /// *source* row (one sample per row of the trace the view was built
  /// from, NaN for gaps), so row subsets taken before or after attachment
  /// read identical samples. The view shares ownership of the column.
  /// Throws std::invalid_argument when the id already exists, the column
  /// is null, or its size differs from the source trace's row count.
  [[nodiscard]] TraceView with_channel(
      ChannelId id, std::shared_ptr<const linalg::Vector> column) const;

  /// True when any channel of this view is a derived (attached) column
  /// rather than a column of the source matrix.
  [[nodiscard]] bool has_derived_channels() const noexcept;

  /// Fraction of present (non-NaN) samples over all view channels and
  /// rows; 0.0 for degenerate views (0 rows and/or 0 channels).
  [[nodiscard]] double coverage() const noexcept;

  /// Deep-copy the viewed content into an owning MultiTrace — the escape
  /// hatch for anything that must outlive the source trace (cache
  /// entries, stored artifacts). Counts the copied samples in the
  /// `timeseries.bytes_copied` counter like every materializing
  /// MultiTrace API does.
  [[nodiscard]] MultiTrace materialize() const;

 private:
  /// High bit of a cols_ entry marking a derived column; the low bits then
  /// index derived_ instead of the source matrix.
  static constexpr std::size_t kDerivedColumn =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);

  linalg::MatrixView base_;          ///< the source trace's value matrix
  TimeGrid grid_;                    ///< the view's (reindexed) grid
  std::vector<ChannelId> channels_;  ///< view channel ids, in view order
  std::vector<std::size_t> cols_;    ///< view column -> source column, or
                                     ///< kDerivedColumn | derived_ index
  std::size_t row_first_ = 0;        ///< contiguous-row offset
  std::vector<std::size_t> rows_;    ///< view row -> source row; empty =
                                     ///< contiguous [row_first_, +size())
  /// Attached derived columns, each sized to the source trace's rows and
  /// shared with whoever materialized them (alive as long as any copy of
  /// the view is).
  std::vector<std::shared_ptr<const linalg::Vector>> derived_;
};

/// Row mask that is true where *all* listed channels are valid.
/// With empty `ids`, all channels are required.
[[nodiscard]] std::vector<bool> rows_with_all_valid(
    const TraceView& trace, const std::vector<ChannelId>& ids = {});

/// Per-row mean across the given channels, skipping missing samples;
/// NaN when no channel is present in that row. With empty `ids`, averages
/// all channels.
[[nodiscard]] linalg::Vector row_mean(const TraceView& trace,
                                      const std::vector<ChannelId>& ids = {});

}  // namespace auditherm::timeseries
