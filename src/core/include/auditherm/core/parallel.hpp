#pragma once

/// \file parallel.hpp
/// Deterministic thread-pool parallelism for the library's hot paths.
///
/// Design goals, in priority order:
///   1. **Bitwise determinism.** A parallel region's result is identical to
///      serial execution at any thread count. Work is split into *static
///      chunks* whose boundaries depend only on (range, grainsize) — never
///      on the thread count — and reductions combine per-chunk accumulators
///      in ascending chunk order. Threads race only for *which* chunk they
///      execute, never for what a chunk computes.
///   2. **Zero cost when disabled.** A resolved thread count of 1 runs the
///      body inline on the calling thread; no pool is ever spun up.
///   3. **Safe nesting.** A parallel region entered from inside another
///      parallel region (worker or participating caller) runs serially, so
///      coarse-grained sweeps can wrap the parallel kernels without
///      deadlock or thread explosion.
///
/// Thread count resolution, strongest first: set_thread_count() override >
/// the AUDITHERM_THREADS environment variable > hardware_concurrency().
/// PipelineConfig::threads feeds the override via ThreadCountScope.

#include <cstddef>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

namespace auditherm::core {

/// Resolved number of threads parallel regions may use (always >= 1).
[[nodiscard]] std::size_t thread_count();

/// Override the thread count process-wide; `n == 0` clears the override
/// (falling back to AUDITHERM_THREADS, then hardware_concurrency()).
/// Returns the previous override (0 when none was set).
std::size_t set_thread_count(std::size_t n);

/// RAII thread-count override. `n == 0` leaves the current setting alone,
/// so PipelineConfig::threads == 0 means "inherit".
class ThreadCountScope {
 public:
  explicit ThreadCountScope(std::size_t n)
      : active_(n > 0), previous_(active_ ? set_thread_count(n) : 0) {}
  ~ThreadCountScope() {
    if (active_) set_thread_count(previous_);
  }
  ThreadCountScope(const ThreadCountScope&) = delete;
  ThreadCountScope& operator=(const ThreadCountScope&) = delete;

 private:
  bool active_;
  std::size_t previous_;
};

namespace detail {

/// Number of static chunks a range of `n` items splits into at `grain`
/// items per chunk. Depends only on (n, grain) — this is what makes the
/// decomposition thread-count independent.
[[nodiscard]] constexpr std::size_t chunk_count(std::size_t n,
                                                std::size_t grain) noexcept {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// True while the current thread is executing inside a parallel region
/// (worker or participating caller); nested regions then run serially.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Execute task(0) .. task(count - 1), each exactly once, using up to
/// thread_count() threads (the caller participates). Tasks are claimed
/// dynamically, so completion order is unspecified — tasks must write to
/// disjoint state. All tasks run even if one throws; afterwards the
/// lowest-index captured exception is rethrown on the calling thread.
void run_tasks(std::size_t count, const std::function<void(std::size_t)>& task);

}  // namespace detail

/// Apply `body(chunk_begin, chunk_end)` over static chunks of
/// [begin, end). Chunk boundaries are determined solely by the range and
/// `grain`; chunks must not share mutable state.
template <typename Body>
void parallel_for_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                         Body&& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks = detail::chunk_count(n, grain);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  detail::run_tasks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    body(lo, hi);
  });
}

/// Apply `body(i)` for each i in [begin, end), chunked by `grain`.
/// Iterations must be independent (disjoint writes).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  parallel_for_chunks(begin, end, grain,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
}

/// Ordered reduction over [begin, end): `map(chunk_begin, chunk_end) -> T`
/// produces one accumulator per static chunk; `combine(acc, value)` folds
/// them **in ascending chunk order**, starting from `identity`. Because
/// the chunking and the fold order are fixed, the result is bitwise
/// identical at any thread count (including 1).
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end,
                                std::size_t grain, T identity, MapFn&& map,
                                CombineFn&& combine) {
  if (end <= begin) return identity;
  if (grain == 0) grain = 1;
  const std::size_t chunks = detail::chunk_count(end - begin, grain);
  std::vector<T> partial(chunks);
  detail::run_tasks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    partial[c] = map(lo, hi);
  });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

/// Grainsize so each chunk carries roughly `target_ops` worth of work:
/// items with heavy bodies get small grains (down to 1), cheap bodies get
/// large grains so serial ranges skip the pool entirely.
[[nodiscard]] constexpr std::size_t grain_for_cost(
    std::size_t ops_per_item, std::size_t target_ops = 16384) noexcept {
  if (ops_per_item == 0) ops_per_item = 1;
  const std::size_t g = target_ops / ops_per_item;
  return g == 0 ? 1 : g;
}

}  // namespace auditherm::core
