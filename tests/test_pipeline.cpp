// Integration tests for the three-step pipeline on simulated datasets.

#include "auditherm/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "auditherm/sim/dataset.hpp"

namespace core = auditherm::core;
namespace sim = auditherm::sim;
namespace hvac = auditherm::hvac;
namespace selection = auditherm::selection;

namespace {

/// One shared small dataset for all pipeline tests (generation costs a
/// few hundred ms).
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 56;
    config.failure_days = 10;
    return sim::generate_dataset(config);
  }();
  return ds;
}

core::DataSplit make_split() {
  const auto& ds = dataset();
  auto required = ds.sensor_ids();
  const auto inputs = ds.input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  return core::split_dataset(ds.trace, required, ds.schedule,
                             hvac::Mode::kOccupied);
}

core::PipelineResult run_with(core::SelectionStrategy strategy,
                              std::size_t per_cluster = 1,
                              std::size_t threads = 0) {
  const auto& ds = dataset();
  core::PipelineConfig config;
  config.strategy = strategy;
  config.sensors_per_cluster = per_cluster;
  config.threads = threads;
  const core::ThermalModelingPipeline pipeline(config);
  return pipeline.run(ds.trace, ds.schedule, make_split(), ds.wireless_ids(),
                      ds.input_ids(),
                      core::RunOptions{.thermostat_ids = ds.thermostat_ids()});
}

/// Bitwise comparison of full pipeline results: every float is compared
/// with == (no tolerances), which is the determinism guarantee the
/// parallel runtime makes.
void expect_bitwise_equal(const core::PipelineResult& a,
                          const core::PipelineResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.clustering.cluster_count, b.clustering.cluster_count);
  EXPECT_EQ(a.clustering.eigenvalues, b.clustering.eigenvalues);
  EXPECT_EQ(a.selection.per_cluster, b.selection.per_cluster);
  EXPECT_EQ(a.reduced_model.a(), b.reduced_model.a());
  EXPECT_EQ(a.reduced_model.a2(), b.reduced_model.a2());
  EXPECT_EQ(a.reduced_model.b(), b.reduced_model.b());
  EXPECT_EQ(a.reduced_eval.window_count, b.reduced_eval.window_count);
  EXPECT_EQ(a.reduced_eval.channel_rms, b.reduced_eval.channel_rms);
  EXPECT_EQ(a.reduced_eval.channel_abs_errors, b.reduced_eval.channel_abs_errors);
  EXPECT_EQ(a.reduced_eval.window_channel_rms, b.reduced_eval.window_channel_rms);
  EXPECT_EQ(a.reduced_eval.pooled_rms, b.reduced_eval.pooled_rms);
  EXPECT_EQ(a.cluster_mean_errors.per_cluster_abs,
            b.cluster_mean_errors.per_cluster_abs);
}

}  // namespace

TEST(Pipeline, SmsEndToEnd) {
  const auto result = run_with(core::SelectionStrategy::kStratifiedNearMean);

  // Clustering covers every wireless sensor exactly once.
  EXPECT_GE(result.clustering.cluster_count, 2u);
  std::size_t covered = 0;
  for (const auto& cluster : result.clustering.clusters()) {
    covered += cluster.size();
    EXPECT_FALSE(cluster.empty());
  }
  EXPECT_EQ(covered, dataset().wireless_ids().size());

  // Selection stays within each cluster.
  const auto clusters = result.clustering.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    ASSERT_EQ(result.selection.per_cluster[c].size(), 1u);
    EXPECT_NE(std::find(clusters[c].begin(), clusters[c].end(),
                        result.selection.per_cluster[c][0]),
              clusters[c].end());
  }

  // Reduced model states are exactly the selected sensors.
  EXPECT_EQ(result.reduced_model.state_channels(),
            result.selection.flattened());

  // Errors exist and are finite, modest magnitudes.
  EXPECT_GT(result.reduced_eval.window_count, 3u);
  EXPECT_TRUE(std::isfinite(result.reduced_eval.pooled_rms));
  const double p99 = result.cluster_mean_errors.percentile(99.0);
  EXPECT_GT(p99, 0.0);
  EXPECT_LT(p99, 5.0);
}

TEST(Pipeline, RecoversFrontBackClusters) {
  // With correlation similarity and the eigengap rule, the dataset
  // reproduces the paper's two-zone split: front sensors
  // {3,6,7,8,13,14,17,23,28,33,38} vs the rest. On this shortened 56-day
  // dataset a couple of boundary sensors may flip, so we require strong
  // (not perfect) agreement; the full-length benches recover it exactly.
  const auto result = run_with(core::SelectionStrategy::kStratifiedNearMean);
  ASSERT_EQ(result.clustering.cluster_count, 2u);
  const std::vector<int> front{3, 6, 7, 8, 13, 14, 17, 23, 28, 33, 38};
  const auto front_label = result.clustering.cluster_of(3);
  std::size_t agree = 0;
  for (int id : dataset().wireless_ids()) {
    const bool expect_front =
        std::find(front.begin(), front.end(), id) != front.end();
    const bool is_front = result.clustering.cluster_of(id) == front_label;
    agree += (expect_front == is_front) ? 1 : 0;
  }
  EXPECT_GE(agree, 21u) << "only " << agree << "/25 sensors on the expected "
                        << "side of the front/back split";
}

TEST(Pipeline, AllStrategiesRun) {
  for (auto strategy : {core::SelectionStrategy::kStratifiedNearMean,
                        core::SelectionStrategy::kStratifiedRandom,
                        core::SelectionStrategy::kSimpleRandom,
                        core::SelectionStrategy::kThermostats,
                        core::SelectionStrategy::kGaussianProcess}) {
    const auto result = run_with(strategy);
    EXPECT_EQ(result.selection.per_cluster.size(),
              result.clustering.cluster_count);
    EXPECT_NO_THROW((void)result.cluster_mean_errors.percentile(99.0));
  }
}

TEST(Pipeline, ThermostatStrategyUsesThermostats) {
  const auto result = run_with(core::SelectionStrategy::kThermostats);
  for (const auto& chosen : result.selection.per_cluster) {
    for (int id : chosen) {
      EXPECT_TRUE(id == 40 || id == 41);
    }
  }
}

TEST(Pipeline, MultipleSensorsPerCluster) {
  const auto result =
      run_with(core::SelectionStrategy::kStratifiedNearMean, 2);
  for (const auto& chosen : result.selection.per_cluster) {
    EXPECT_GE(chosen.size(), 1u);
    EXPECT_LE(chosen.size(), 2u);
  }
  EXPECT_GE(result.reduced_model.state_count(), result.selection.per_cluster.size());
}

TEST(Pipeline, DeterministicForSameConfig) {
  const auto a = run_with(core::SelectionStrategy::kStratifiedNearMean);
  const auto b = run_with(core::SelectionStrategy::kStratifiedNearMean);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.selection.flattened(), b.selection.flattened());
  EXPECT_DOUBLE_EQ(a.cluster_mean_errors.percentile(99.0),
                   b.cluster_mean_errors.percentile(99.0));
}

TEST(Pipeline, BitwiseIdenticalAcrossThreadCounts) {
  // The determinism guarantee of the parallel runtime, end to end: the
  // full three-step pipeline — models, cluster labels, selections, error
  // samples — is bitwise identical at 1, 2, and 8 threads.
  for (auto strategy : {core::SelectionStrategy::kStratifiedNearMean,
                        core::SelectionStrategy::kSimpleRandom}) {
    const auto serial = run_with(strategy, 1, 1);
    const auto two = run_with(strategy, 1, 2);
    const auto eight = run_with(strategy, 1, 8);
    expect_bitwise_equal(serial, two, "1 vs 2 threads");
    expect_bitwise_equal(serial, eight, "1 vs 8 threads");
  }
}

TEST(Pipeline, StrategySweepMatchesIndividualRuns) {
  const auto& ds = dataset();
  core::PipelineConfig base;
  base.threads = 4;
  const std::vector<core::SweepCase> cases{
      {core::SelectionStrategy::kStratifiedNearMean, 7},
      {core::SelectionStrategy::kStratifiedRandom, 1},
      {core::SelectionStrategy::kStratifiedRandom, 2},
      {core::SelectionStrategy::kSimpleRandom, 1},
  };
  const auto sweep = core::run_strategy_sweep(
      base, cases, ds.trace, ds.schedule, make_split(), ds.wireless_ids(),
      ds.input_ids(), core::RunOptions{.thermostat_ids = ds.thermostat_ids()});
  ASSERT_EQ(sweep.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    core::PipelineConfig config;
    config.strategy = cases[i].strategy;
    config.selection_seed = cases[i].seed;
    config.threads = 1;
    const core::ThermalModelingPipeline pipeline(config);
    const auto individual = pipeline.run(
        ds.trace, ds.schedule, make_split(), ds.wireless_ids(), ds.input_ids(),
        core::RunOptions{.thermostat_ids = ds.thermostat_ids()});
    expect_bitwise_equal(sweep[i], individual,
                         "sweep case " + std::to_string(i));
  }
}

TEST(Pipeline, ConfigValidation) {
  core::PipelineConfig bad;
  bad.sensors_per_cluster = 0;
  EXPECT_THROW(core::ThermalModelingPipeline{bad}, std::invalid_argument);
}
