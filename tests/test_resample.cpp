// Tests for downsampling and bounded forward-fill.

#include "auditherm/timeseries/resample.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

MultiTrace ramp_trace(std::size_t n = 12) {
  MultiTrace trace(TimeGrid(0, 5, n), {1});
  for (std::size_t k = 0; k < n; ++k) {
    trace.set(k, 0, static_cast<double>(k));
  }
  return trace;
}

}  // namespace

TEST(Downsample, MeanBuckets) {
  const auto out = ts::downsample(ramp_trace(), 3);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out.grid().step(), 15);
  EXPECT_DOUBLE_EQ(out.value(0, 0), 1.0);   // mean of 0,1,2
  EXPECT_DOUBLE_EQ(out.value(3, 0), 10.0);  // mean of 9,10,11
}

TEST(Downsample, HoldTakesLastValid) {
  const auto out = ts::downsample(ramp_trace(), 4, ts::ResampleMethod::kHold);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out.value(2, 0), 11.0);
}

TEST(Downsample, GapsSkippedWithinBucketAndFullGapStaysGap) {
  auto trace = ramp_trace(6);
  trace.clear(0, 0);            // partial gap in bucket 0
  trace.clear(3, 0);            // full gap in bucket 1
  trace.clear(4, 0);
  trace.clear(5, 0);
  const auto out = ts::downsample(trace, 3);
  EXPECT_DOUBLE_EQ(out.value(0, 0), 1.5);  // mean of 1,2
  EXPECT_FALSE(out.valid(1, 0));
}

TEST(Downsample, FactorOneIsIdentityAndZeroThrows) {
  const auto trace = ramp_trace();
  const auto same = ts::downsample(trace, 1);
  EXPECT_EQ(same.grid(), trace.grid());
  EXPECT_THROW((void)ts::downsample(trace, 0), std::invalid_argument);
}

TEST(Downsample, TruncatesTrailingPartialBucket) {
  const auto out = ts::downsample(ramp_trace(11), 3);
  EXPECT_EQ(out.size(), 3u);  // rows 9,10 dropped
}

TEST(ForwardFill, FillsBoundedRuns) {
  MultiTrace trace(TimeGrid(0, 5, 7), {1});
  trace.set(0, 0, 1.0);
  trace.set(5, 0, 6.0);
  const auto filled = ts::forward_fill(trace, 2);
  EXPECT_DOUBLE_EQ(filled.value(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(filled.value(2, 0), 1.0);
  EXPECT_FALSE(filled.valid(3, 0));  // beyond max_fill
  EXPECT_FALSE(filled.valid(4, 0));
  EXPECT_DOUBLE_EQ(filled.value(5, 0), 6.0);
  EXPECT_DOUBLE_EQ(filled.value(6, 0), 6.0);
}

TEST(ForwardFill, UnlimitedFillsEverythingAfterFirst) {
  MultiTrace trace(TimeGrid(0, 5, 5), {1});
  trace.set(1, 0, 2.0);
  const auto filled = ts::forward_fill(trace);
  EXPECT_FALSE(filled.valid(0, 0));  // leading gap untouched
  for (std::size_t k = 1; k < 5; ++k) {
    EXPECT_DOUBLE_EQ(filled.value(k, 0), 2.0);
  }
}

TEST(ForwardFill, PerChannelIndependence) {
  MultiTrace trace(TimeGrid(0, 5, 3), {1, 2});
  trace.set(0, 0, 1.0);
  trace.set(2, 1, 9.0);
  const auto filled = ts::forward_fill(trace);
  EXPECT_DOUBLE_EQ(filled.value(2, 0), 1.0);
  EXPECT_FALSE(filled.valid(1, 1));
}
