file(REMOVE_RECURSE
  "libauditherm_control.a"
)
