// Tests for CSV round-tripping of gapped traces.

#include "auditherm/timeseries/csv_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

MultiTrace make_trace() {
  MultiTrace trace(TimeGrid(30, 5, 3), {1, 42});
  trace.set(0, 0, 20.5);
  trace.set(0, 1, 21.0);
  trace.set(2, 0, 19.75);  // row 1 fully missing, row 2 channel 42 missing
  return trace;
}

}  // namespace

TEST(CsvIo, RoundTripPreservesEverything) {
  const auto original = make_trace();
  std::stringstream ss;
  ts::write_csv(ss, original);
  const auto loaded = ts::read_csv(ss);

  EXPECT_EQ(loaded.grid(), original.grid());
  EXPECT_EQ(loaded.channels(), original.channels());
  for (std::size_t k = 0; k < original.size(); ++k) {
    for (std::size_t c = 0; c < original.channel_count(); ++c) {
      EXPECT_EQ(loaded.valid(k, c), original.valid(k, c));
      if (original.valid(k, c)) {
        EXPECT_DOUBLE_EQ(loaded.value(k, c), original.value(k, c));
      }
    }
  }
}

TEST(CsvIo, HeaderFormat) {
  std::stringstream ss;
  ts::write_csv(ss, make_trace());
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "time_minutes,ch1,ch42");
}

TEST(CsvIo, SingleRowGetsUnitStep) {
  std::stringstream ss("time_minutes,ch1\n100,20.0\n");
  const auto trace = ts::read_csv(ss);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.grid().start(), 100);
  EXPECT_EQ(trace.grid().step(), 1);
}

TEST(CsvIo, RejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, RejectsBadHeader) {
  std::stringstream ss("time,ch1\n0,1\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
  std::stringstream ss2("time_minutes,foo\n0,1\n");
  EXPECT_THROW((void)ts::read_csv(ss2), std::runtime_error);
}

TEST(CsvIo, RejectsRaggedRow) {
  std::stringstream ss("time_minutes,ch1,ch2\n0,1.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, RejectsNonUniformStep) {
  std::stringstream ss("time_minutes,ch1\n0,1.0\n5,2.0\n12,3.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, RejectsNonIncreasingTime) {
  std::stringstream ss("time_minutes,ch1\n10,1.0\n10,2.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, FileRoundTrip) {
  const auto original = make_trace();
  const std::string path = ::testing::TempDir() + "/auditherm_trace.csv";
  ts::write_csv_file(path, original);
  const auto loaded = ts::read_csv_file(path);
  EXPECT_EQ(loaded.grid(), original.grid());
  EXPECT_NEAR(loaded.coverage(), original.coverage(), 1e-12);
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW((void)ts::read_csv_file("/nonexistent/path.csv"),
               std::runtime_error);
  EXPECT_THROW(ts::write_csv_file("/nonexistent/dir/out.csv", make_trace()),
               std::runtime_error);
}
