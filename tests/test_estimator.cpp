// Tests for piecewise least-squares identification: exact recovery of
// known systems, gap handling, and mode filtering.

#include "auditherm/sysid/estimator.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace sysid = auditherm::sysid;
namespace ts = auditherm::timeseries;
namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

namespace {

/// Simulate a known 2-state first-order system with one input and write it
/// into a MultiTrace (channels 1, 2 states; 101 input).
ts::MultiTrace known_first_order_trace(std::size_t n, const Matrix& a,
                                       const Matrix& b, std::uint64_t seed) {
  ts::MultiTrace trace(ts::TimeGrid(0, 5, n), {1, 2, 101});
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> input(0.0, 1.0);
  Vector x{20.0, 21.0};
  for (std::size_t k = 0; k < n; ++k) {
    const double u = input(rng);
    trace.set(k, 0, x[0]);
    trace.set(k, 1, x[1]);
    trace.set(k, 2, u);
    const Vector ax = a * x;
    x[0] = ax[0] + b(0, 0) * u;
    x[1] = ax[1] + b(1, 0) * u;
  }
  return trace;
}

const Matrix kA{{0.9, 0.05}, {0.02, 0.85}};
const Matrix kB{{0.5}, {-0.3}};

sysid::EstimationOptions exact_options() {
  sysid::EstimationOptions opts;
  opts.ridge = 0.0;  // exact recovery needs unregularized LS
  return opts;
}

}  // namespace

TEST(Estimator, RecoversKnownFirstOrderSystem) {
  const auto trace = known_first_order_trace(200, kA, kB, 1);
  sysid::ModelEstimator est({1, 2}, {101}, sysid::ModelOrder::kFirst,
                            exact_options());
  const auto model = est.fit(trace);
  EXPECT_TRUE(linalg::approx_equal(model.a(), kA, 1e-8));
  EXPECT_TRUE(linalg::approx_equal(model.b(), kB, 1e-8));
}

TEST(Estimator, RecoversKnownSecondOrderSystem) {
  // Build a genuine second-order scalar system:
  // T(k+1) = 1.2 T(k) - 0.3 dT(k) + 0.4 u(k)  (stable since the
  // companion-form eigenvalues stay inside the unit circle).
  const double a1 = 0.9, a2 = -0.3, bu = 0.4;
  std::mt19937_64 rng(2);
  std::normal_distribution<double> input(0.0, 1.0);
  const std::size_t n = 300;
  ts::MultiTrace trace(ts::TimeGrid(0, 5, n), {1, 101});
  double prev = 20.0, curr = 20.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double u = input(rng);
    trace.set(k, 0, curr);
    trace.set(k, 1, u);
    const double next = a1 * curr + a2 * (curr - prev) + bu * u;
    prev = curr;
    curr = next;
  }
  sysid::ModelEstimator est({1}, {101}, sysid::ModelOrder::kSecond,
                            exact_options());
  const auto model = est.fit(trace);
  EXPECT_NEAR(model.a()(0, 0), a1, 1e-8);
  EXPECT_NEAR(model.a2()(0, 0), a2, 1e-8);
  EXPECT_NEAR(model.b()(0, 0), bu, 1e-8);
}

TEST(Estimator, GapsDoNotFabricateTransitions) {
  // Corrupt one sample mid-trace; the fit must still recover the system
  // because the estimator drops transitions that straddle the gap.
  auto trace = known_first_order_trace(200, kA, kB, 3);
  trace.clear(100, 0);
  // Poison neighbors: if the estimator wrongly used rows 99->101 as a
  // transition the recovered A would shift.
  sysid::ModelEstimator est({1, 2}, {101}, sysid::ModelOrder::kFirst,
                            exact_options());
  const auto model = est.fit(trace);
  EXPECT_TRUE(linalg::approx_equal(model.a(), kA, 1e-8));
}

TEST(Estimator, RowFilterRestrictsTransitions) {
  // Make the system change behavior halfway; fitting with a filter on the
  // first half must recover the first-half dynamics only.
  const Matrix a_other{{0.5, 0.0}, {0.0, 0.5}};
  auto trace = known_first_order_trace(400, kA, kB, 4);
  // Overwrite the second half with the other system.
  {
    std::mt19937_64 rng(5);
    std::normal_distribution<double> input(0.0, 1.0);
    Vector x{20.0, 21.0};
    for (std::size_t k = 200; k < 400; ++k) {
      const double u = input(rng);
      trace.set(k, 0, x[0]);
      trace.set(k, 1, x[1]);
      trace.set(k, 2, u);
      const Vector ax = a_other * x;
      x[0] = ax[0] + kB(0, 0) * u;
      x[1] = ax[1] + kB(1, 0) * u;
    }
  }
  std::vector<bool> first_half(400, false);
  for (std::size_t k = 0; k < 200; ++k) first_half[k] = true;
  sysid::ModelEstimator est({1, 2}, {101}, sysid::ModelOrder::kFirst,
                            exact_options());
  const auto model = est.fit(trace, first_half);
  EXPECT_TRUE(linalg::approx_equal(model.a(), kA, 1e-8));
}

TEST(Estimator, SummarizeCountsTransitionsAndSegments) {
  auto trace = known_first_order_trace(100, kA, kB, 6);
  trace.clear(50, 1);  // split into two segments
  sysid::ModelEstimator est({1, 2}, {101}, sysid::ModelOrder::kFirst);
  const auto summary = est.summarize(trace);
  EXPECT_EQ(summary.segments, 2u);
  EXPECT_EQ(summary.transitions, 49u + 48u);
  EXPECT_EQ(summary.parameters, 3u);  // 2 states + 1 input
  const sysid::ModelEstimator est2({1, 2}, {101}, sysid::ModelOrder::kSecond);
  EXPECT_EQ(est2.summarize(trace).parameters, 5u);
}

TEST(Estimator, SecondOrderNeedsThreeRowHistory) {
  // Segments of exactly 2 rows give first-order one transition but
  // second-order none.
  ts::MultiTrace trace(ts::TimeGrid(0, 5, 5), {1, 101});
  for (std::size_t k : {0u, 1u, 3u, 4u}) {
    trace.set(k, 0, 20.0 + k);
    trace.set(k, 1, 1.0);
  }
  sysid::ModelEstimator first({1}, {101}, sysid::ModelOrder::kFirst);
  sysid::ModelEstimator second({1}, {101}, sysid::ModelOrder::kSecond);
  EXPECT_EQ(first.summarize(trace).transitions, 2u);
  EXPECT_EQ(second.summarize(trace).transitions, 0u);
}

TEST(Estimator, ThrowsWithTooFewTransitions) {
  const auto trace = known_first_order_trace(10, kA, kB, 7);
  sysid::EstimationOptions opts;
  opts.min_transitions = 100;
  sysid::ModelEstimator est({1, 2}, {101}, sysid::ModelOrder::kFirst, opts);
  EXPECT_THROW((void)est.fit(trace), std::runtime_error);
}

TEST(Estimator, RidgeDefaultStillAccurate) {
  // The default tiny relative ridge must not visibly bias a well-
  // conditioned problem.
  const auto trace = known_first_order_trace(500, kA, kB, 8);
  sysid::ModelEstimator est({1, 2}, {101}, sysid::ModelOrder::kFirst);
  const auto model = est.fit(trace);
  EXPECT_TRUE(linalg::approx_equal(model.a(), kA, 1e-3));
  EXPECT_TRUE(linalg::approx_equal(model.b(), kB, 1e-3));
}

TEST(Estimator, ConstructionValidation) {
  EXPECT_THROW(sysid::ModelEstimator({}, {101}, sysid::ModelOrder::kFirst),
               std::invalid_argument);
  EXPECT_THROW(sysid::ModelEstimator({1}, {}, sysid::ModelOrder::kFirst),
               std::invalid_argument);
  sysid::EstimationOptions bad;
  bad.ridge = -1.0;
  EXPECT_THROW(sysid::ModelEstimator({1}, {101}, sysid::ModelOrder::kFirst,
                                     bad),
               std::invalid_argument);
}

TEST(Estimator, RowFilterSizeValidated) {
  const auto trace = known_first_order_trace(50, kA, kB, 9);
  sysid::ModelEstimator est({1, 2}, {101}, sysid::ModelOrder::kFirst);
  EXPECT_THROW((void)est.fit(trace, std::vector<bool>(10, true)),
               std::invalid_argument);
}
