#pragma once

/// \file export.hpp
/// Recorder exporters: a human-readable summary (span tree + metrics, for
/// stderr / --trace) and schema-versioned machine-readable JSON (for
/// --metrics-out and the BENCH_*.json-style artifacts).
///
/// JSON schema (kJsonSchema / kJsonSchemaVersion):
///   {
///     "schema": "auditherm.metrics", "schema_version": 1,
///     "counters":   {"name": 123, ...},
///     "gauges":     {"name": 4.0, ...},
///     "histograms": {"name": {"count": N, "sum": S, "max": M,
///                             "buckets": [{"le": 1, "count": 0}, ...]}},
///     "spans": [{"id": 1, "parent": 0, "name": "pipeline.run",
///                "thread": 0, "start_us": 0.0, "duration_us": 12.3}, ...]
///   }
/// Histogram bucket "le" bounds follow HistogramLayout (exponential; the
/// last bucket's bound is null = unbounded). Keys within each object are
/// sorted by name; spans are ordered by id.

#include <cstdio>
#include <string>

#include "auditherm/obs/trace_span.hpp"

namespace auditherm::obs {

inline constexpr std::string_view kJsonSchema = "auditherm.metrics";
inline constexpr int kJsonSchemaVersion = 1;

/// Serialize the recorder's metrics and span log as JSON.
[[nodiscard]] std::string to_json(const Recorder& recorder);

/// Write to_json() to `path`; returns false (with no throw) when the file
/// cannot be opened or written.
bool write_json_file(const std::string& path, const Recorder& recorder);

/// Human-readable report: the span tree (indented, milliseconds, thread
/// ordinals) followed by counters, gauges, and histogram summaries.
void write_summary(std::FILE* out, const Recorder& recorder);

}  // namespace auditherm::obs
