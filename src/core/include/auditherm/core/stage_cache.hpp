#pragma once

/// \file stage_cache.hpp
/// Content-keyed memoization of the modeling pipeline's expensive stages.
///
/// The paper's evaluation sweeps (Tables I-II, Figs 8-11) rerun the
/// pipeline across selection strategies and seeds over a *fixed*
/// clustering: the training view, similarity graph, Laplacian spectrum,
/// k-means labels, evaluation windows, and measured cluster means never
/// depend on strategy or seed. A StageCache memoizes those artifacts under
/// a cheap structural hash of everything they *do* depend on, so a sweep
/// over N cases performs the Step-1 work exactly once (amgcl's
/// setup/solve split: build the expensive operator once, reuse it across
/// many solves).
///
/// Key rules (see DESIGN.md §"Stage cache"):
///   * Keys are chained: each stage's key folds its upstream stage's key
///     with the options that stage newly consumes. Changing, say, the
///     spectral options invalidates the clustering but still reuses the
///     similarity graph.
///   * Trace content enters keys via trace_fingerprint(): grid, channel
///     ids, and every sample's bit pattern (NaN gaps normalized to one
///     pattern). Two bitwise-equal traces share cache entries; any edit
///     misses.
///   * Hits return shared_ptr aliases of the stored artifact — callers
///     never copy, and a cached run is bitwise identical to an uncached
///     one because both execute the same builder code on the same inputs.
///
/// Thread safety: get_or_build() may be called concurrently from the
/// sweep's worker threads. One mutex guards the table; builders run with
/// NO cache lock held (a builder may itself fan out over the thread
/// pool, so holding a lock across build() would order it against the
/// pool's batch mutex — a lock-order inversion TSan rejects). A key's
/// first toucher marks it building and later publishes; concurrent
/// touchers park on a condition variable — except inside a parallel
/// region, where parking would stall the pool, so they build a duplicate
/// and the first publish wins. Outside parallel regions a key is built
/// exactly once.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "auditherm/obs/metrics.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::core {

/// Incremental FNV-1a (64-bit) over the structural content of cache-key
/// inputs. Not cryptographic — keys are a memoization address, not a
/// security boundary.
class StageKeyHasher {
 public:
  void add_bytes(const void* data, std::size_t size) noexcept;
  void add(std::uint64_t v) noexcept;
  void add(std::int64_t v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void add(bool v) noexcept { add(static_cast<std::uint64_t>(v ? 1 : 2)); }
  /// Doubles hash by bit pattern; NaNs collapse to one sentinel so every
  /// gap encoding keys identically.
  void add(double v) noexcept;
  void add(std::string_view s) noexcept;
  void add(const std::vector<bool>& mask) noexcept;
  void add(const std::vector<int>& v) noexcept;

  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Structural fingerprint of a trace: grid, channel ids, and all sample
/// bits. O(rows x channels) but pure streaming arithmetic — microseconds
/// against the milliseconds-to-seconds stages it guards. Takes a view and
/// hashes the *viewed* content, so a zero-copy subset keys identically to
/// the materialized trace it is equivalent to (a MultiTrace converts
/// implicitly and keys exactly as before).
[[nodiscard]] std::uint64_t trace_fingerprint(
    const timeseries::TraceView& trace);

/// Hit/miss counters for one stage (or the cache-wide totals). Backed by
/// the cache's own obs::MetricsRegistry (`stage_cache.hit.<stage>` /
/// `stage_cache.miss.<stage>` counters); stats() and totals() are thin
/// adapters over it. When a run recorder is installed (obs::RecorderScope)
/// the same counters are mirrored there, so --metrics-out JSON carries
/// them without any caller-side plumbing.
struct StageStats {
  std::size_t hits = 0;
  std::size_t misses = 0;  ///< == number of times the stage was computed
};

/// Thread-safe content-keyed memo table for pipeline stage artifacts.
///
/// Values are type-erased internally; get_or_build<T> stores and returns
/// shared_ptr<const T>. A key must always be used with the same T (keys
/// fold in a per-stage tag, so distinct stages never collide).
class StageCache {
 public:
  StageCache() = default;
  StageCache(const StageCache&) = delete;
  StageCache& operator=(const StageCache&) = delete;

  /// Return the artifact for (stage, key). On first touch `build` runs
  /// once; concurrent first-touchers either wait for it or (inside a
  /// parallel region) race a duplicate build whose loser is discarded, so
  /// every caller receives the same stored artifact.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> get_or_build(std::string_view stage,
                                        std::uint64_t key, BuildFn&& build) {
    auto erased = get_or_build_erased(
        stage, tag_key(stage, key), [&]() -> std::shared_ptr<const void> {
          return std::make_shared<const T>(build());
        });
    return std::static_pointer_cast<const T>(std::move(erased));
  }

  /// Counters for one stage name ({0,0} for a never-seen stage).
  [[nodiscard]] StageStats stats(std::string_view stage) const;
  /// Counters summed over all stages.
  [[nodiscard]] StageStats totals() const;
  /// Number of cached artifacts.
  [[nodiscard]] std::size_t size() const;
  /// Drop every artifact and reset the visible hit/miss counters. The
  /// backing registry stays monotonic (counters never decrease, matching
  /// what a run recorder mirrors); stats()/totals() report deltas since
  /// the last clear().
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    bool building = false;  ///< a builder is running for this key
  };

  /// Fold the stage name into the key so two stages with equal content
  /// keys address different slots.
  [[nodiscard]] static std::uint64_t tag_key(std::string_view stage,
                                             std::uint64_t key) noexcept;

  std::shared_ptr<const void> get_or_build_erased(
      std::string_view stage, std::uint64_t tagged_key,
      const std::function<std::shared_ptr<const void>()>& build);

  /// Record a hit/miss in the backing registry (and mirror it to the
  /// current run recorder, if one is installed). Caller holds mutex_.
  void count_event(std::string_view stage, bool hit);

  mutable std::mutex mutex_;
  std::condition_variable build_done_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  /// Hit/miss counters; see StageStats for the naming scheme.
  obs::MetricsRegistry registry_;
  /// Counter values captured at the last clear(); stats()/totals()
  /// subtract these so clear() resets the visible numbers without making
  /// the registry's counters non-monotonic.
  std::unordered_map<std::string, std::uint64_t> baseline_;
};

}  // namespace auditherm::core
