file(REMOVE_RECURSE
  "CMakeFiles/bench_control.dir/bench_control.cpp.o"
  "CMakeFiles/bench_control.dir/bench_control.cpp.o.d"
  "bench_control"
  "bench_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
