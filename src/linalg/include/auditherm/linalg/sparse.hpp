#pragma once

/// \file sparse.hpp
/// Compressed-sparse-row matrices and the Lanczos partial eigensolver.
///
/// The dense spectral path (similarity matrix -> dense Laplacian ->
/// tridiagonalization) is O(n^2) memory and O(n^3) time, which is fine for
/// the paper's 27-sensor auditorium but not for campus-scale fleets. A
/// k-NN-sparsified similarity graph has O(n k) edges, so its Laplacian
/// fits in CSR storage and the m smallest eigenpairs come out of a Lanczos
/// iteration whose cost is dominated by O(iterations x nnz) SpMV work.
///
/// Determinism contract (same as the dense solvers): SpMV is row-parallel
/// with each row accumulated serially in ascending column order, so
/// results are bitwise identical at any thread count; the Lanczos start
/// vectors come from the same splitmix64 hash the dense partial solver
/// uses, and eigenvectors obey the shared largest-|component|-positive
/// sign pin.

#include <cstddef>
#include <vector>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Sparse matrix in compressed-sparse-row form.
///
/// Invariants: `row_ptr().size() == rows() + 1`, `row_ptr()` is
/// non-decreasing with `row_ptr().front() == 0` and `row_ptr().back() ==
/// nnz()`; within each row column indices are non-decreasing and < cols().
/// Duplicate column entries are permitted (they act additively, as when
/// the matrix is assembled from triplets); `from_dense()` never produces
/// them.
class CsrMatrix {
 public:
  /// Empty 0 x 0 matrix.
  CsrMatrix() = default;

  /// Build from raw CSR arrays. Throws std::invalid_argument when the
  /// arrays violate the invariants above (sizes, monotonicity, column
  /// bounds, or ordering within a row).
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  /// Compress a dense matrix: entries with |a_ij| <= drop_tol are dropped
  /// (0.0 keeps every nonzero, including negative zeros' positive twin —
  /// exact zeros are always dropped). Round-tripping through to_dense()
  /// reproduces the input bitwise when drop_tol == 0.
  [[nodiscard]] static CsrMatrix from_dense(const Matrix& a,
                                            double drop_tol = 0.0);

  /// Expand back to dense storage; duplicate column entries accumulate.
  [[nodiscard]] Matrix to_dense() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 && cols_ == 0; }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Sparse matrix-vector product y = A x.
  ///
  /// Row-parallel on the deterministic thread pool: rows are independent
  /// and each row's accumulation runs serially in storage order, so the
  /// result is bitwise identical at any thread count. Throws
  /// std::invalid_argument when x.size() != cols().
  [[nodiscard]] Vector multiply(const Vector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_ = {0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Sparse matrix-vector product (same contract as CsrMatrix::multiply).
[[nodiscard]] Vector operator*(const CsrMatrix& a, const Vector& x);

/// Compute the `m` smallest eigenpairs of the symmetric sparse matrix `a`
/// by a Lanczos iteration with full reorthogonalization.
///
/// Output matches eigen_symmetric_smallest(): eigenvalues ascending,
/// eigenvectors orthonormal with the largest-|component|-positive sign
/// pin. The Krylov basis is grown with deterministic splitmix64 start
/// vectors (restarting with a fresh orthogonal vector on breakdown, which
/// is how the zero modes of a disconnected Laplacian are all found) and
/// every basis vector is reorthogonalized against the whole basis — the
/// O(j^2 n) insurance that keeps Ritz pairs from duplicating in floating
/// point. Work is O(iterations x nnz) SpMV plus the reorthogonalization;
/// memory is the basis (iterations x n).
///
/// `a` is used as stored — callers pass a numerically symmetric matrix
/// (e.g. a graph Laplacian); tiny asymmetries shift eigenvalues by O(eps)
/// like any perturbation. Throws std::invalid_argument when `a` is not
/// square, m == 0, or m > rows (callers must size partial-spectrum
/// requests, matching the dense solver's contract), std::domain_error
/// when the iteration exhausts its budget without converging.
[[nodiscard]] SymmetricEigen eigen_symmetric_smallest_sparse(
    const CsrMatrix& a, std::size_t m);

}  // namespace auditherm::linalg
