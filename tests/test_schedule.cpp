// Tests for the HVAC operating schedule.

#include "auditherm/hvac/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hvac = auditherm::hvac;
namespace ts = auditherm::timeseries;

TEST(Schedule, DefaultIsPapersProgram) {
  hvac::Schedule s;
  EXPECT_EQ(s.on_minute(), 6 * 60);
  EXPECT_EQ(s.off_minute(), 21 * 60);
}

TEST(Schedule, ModeBoundaries) {
  hvac::Schedule s;
  EXPECT_EQ(s.mode_at(6 * 60 - 1), hvac::Mode::kUnoccupied);
  EXPECT_EQ(s.mode_at(6 * 60), hvac::Mode::kOccupied);
  EXPECT_EQ(s.mode_at(21 * 60 - 1), hvac::Mode::kOccupied);
  EXPECT_EQ(s.mode_at(21 * 60), hvac::Mode::kUnoccupied);
  EXPECT_TRUE(s.occupied_at(12 * 60));
  EXPECT_FALSE(s.occupied_at(23 * 60));
}

TEST(Schedule, WorksAcrossDays) {
  hvac::Schedule s;
  const auto noon_day3 = 3 * ts::kMinutesPerDay + 12 * 60;
  EXPECT_TRUE(s.occupied_at(noon_day3));
  const auto midnight_day5 = 5 * ts::kMinutesPerDay;
  EXPECT_FALSE(s.occupied_at(midnight_day5));
}

TEST(Schedule, CustomProgramValidated) {
  hvac::Schedule s(8 * 60, 18 * 60);
  EXPECT_TRUE(s.occupied_at(9 * 60));
  EXPECT_FALSE(s.occupied_at(7 * 60));
  EXPECT_THROW(hvac::Schedule(18 * 60, 8 * 60), std::invalid_argument);
  EXPECT_THROW(hvac::Schedule(-1, 100), std::invalid_argument);
  EXPECT_THROW(hvac::Schedule(0, 1440), std::invalid_argument);
}

TEST(Schedule, ModeMaskPartitionsGrid) {
  hvac::Schedule s;
  ts::TimeGrid grid(0, 30, 96);  // two days at 30 min
  const auto occ = s.mode_mask(grid, hvac::Mode::kOccupied);
  const auto unocc = s.mode_mask(grid, hvac::Mode::kUnoccupied);
  std::size_t occ_count = 0;
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_NE(occ[k], unocc[k]);  // exactly one mode per sample
    occ_count += occ[k] ? 1 : 0;
  }
  // 15 h of 24 are occupied: 30 of 48 samples per day.
  EXPECT_EQ(occ_count, 60u);
}
