// Tests for the zonal thermal plant: physical sanity, energy bookkeeping,
// and the spatial structure the paper's results rest on.

#include "auditherm/sim/plant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sim = auditherm::sim;

namespace {

sim::PlantInputs idle_inputs(double ambient = 20.5) {
  sim::PlantInputs u;
  u.vav_flows_m3_s.assign(4, 0.0);
  u.supply_temp_c = 13.0;
  u.occupants = 0.0;
  u.lighting = 0.0;
  u.ambient_c = ambient;
  return u;
}

double mean(const auditherm::linalg::Vector& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

}  // namespace

TEST(Plant, InitialStateUniform) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  EXPECT_EQ(plant.node_count(), 27u);
  for (double t : plant.air_temps()) EXPECT_DOUBLE_EQ(t, 20.5);
  for (double t : plant.mass_temps()) EXPECT_DOUBLE_EQ(t, 20.5);
  for (double q : plant.forcing_state()) EXPECT_DOUBLE_EQ(q, 0.0);
}

TEST(Plant, EquilibriumIsStationary) {
  // All states at ambient with no forcing: nothing should move.
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  plant.initialize(20.5);
  for (int i = 0; i < 100; ++i) plant.step(idle_inputs(20.5), 60.0);
  for (double t : plant.air_temps()) EXPECT_NEAR(t, 20.5, 1e-9);
}

TEST(Plant, RelaxesTowardAmbient) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  plant.initialize(25.0);
  const auto u = idle_inputs(10.0);
  const double before = mean(plant.air_temps());
  for (int i = 0; i < 24 * 60; ++i) plant.step(u, 60.0);
  const double after = mean(plant.air_temps());
  EXPECT_LT(after, before);
  EXPECT_GT(after, 10.0 - 1e-6);  // never undershoots ambient
}

TEST(Plant, CoolingSupplyAirCoolsTheRoom) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  plant.initialize(24.0);
  auto u = idle_inputs(24.0);
  u.vav_flows_m3_s.assign(4, 0.5);
  u.supply_temp_c = 13.0;
  for (int i = 0; i < 6 * 60; ++i) plant.step(u, 60.0);
  EXPECT_LT(mean(plant.air_temps()), 22.0);
}

TEST(Plant, OccupantsWarmTheRoom) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  plant.initialize(20.5);
  auto u = idle_inputs(20.5);
  u.occupants = 90.0;
  for (int i = 0; i < 3 * 60; ++i) plant.step(u, 60.0);
  EXPECT_GT(mean(plant.air_temps()), 21.0);
}

TEST(Plant, OccupiedRoomIsWarmerAtTheBack) {
  // The spatial signature behind Fig. 2 and every clustering result:
  // with a full audience and active cooling, back seating nodes run
  // warmer than the front.
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  plant.initialize(21.0);
  auto u = idle_inputs(21.0);
  u.occupants = 90.0;
  u.lighting = 1.0;
  u.vav_flows_m3_s.assign(4, 0.4);
  for (int i = 0; i < 4 * 60; ++i) plant.step(u, 60.0);

  const auto& sites = plan.sensors();
  double front = 0.0, back = 0.0;
  std::size_t nf = 0, nb = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].position.y < 4.0) {
      front += plant.air_temps()[i];
      ++nf;
    } else {
      back += plant.air_temps()[i];
      ++nb;
    }
  }
  front /= static_cast<double>(nf);
  back /= static_cast<double>(nb);
  // (4 h of an uninterrupted full house is harsher than any real event,
  // so the upper sanity bound is loose.)
  EXPECT_GT(back - front, 0.5);
  EXPECT_LT(back - front, 8.0);
}

TEST(Plant, EnergyBalanceWithoutLossTerms) {
  // With walls sealed, no HVAC flow and no mixing lag, occupant heat must
  // land entirely in the air+mass enthalpy.
  auto plan = sim::FloorPlan::brauer_auditorium();
  sim::PlantConfig config;
  config.wall_conductance_w_k = 0.0;
  config.mixing_delay_tau_s = 0.0;
  sim::ZonalPlant plant(plan, config);
  plant.initialize(20.0);
  auto u = idle_inputs(35.0);  // ambient irrelevant: walls sealed
  u.occupants = 50.0;

  const double dt = 60.0;
  const std::size_t steps = 120;
  const double power = 50.0 * config.occupant_heat_w;

  double enthalpy_before = 0.0;
  for (std::size_t i = 0; i < plant.node_count(); ++i) {
    enthalpy_before += config.air_heat_capacity_j_k * plant.air_temps()[i] +
                       config.mass_heat_capacity_j_k * plant.mass_temps()[i];
  }
  for (std::size_t s = 0; s < steps; ++s) plant.step(u, dt);
  double enthalpy_after = 0.0;
  for (std::size_t i = 0; i < plant.node_count(); ++i) {
    enthalpy_after += config.air_heat_capacity_j_k * plant.air_temps()[i] +
                      config.mass_heat_capacity_j_k * plant.mass_temps()[i];
  }
  const double injected = power * dt * static_cast<double>(steps);
  EXPECT_NEAR(enthalpy_after - enthalpy_before, injected, injected * 1e-6);
}

TEST(Plant, MixingDelaySlowsTheResponse) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::PlantConfig lagged;  // default has the mixing delay
  sim::PlantConfig instant = lagged;
  instant.mixing_delay_tau_s = 0.0;
  sim::ZonalPlant slow(plan, lagged);
  sim::ZonalPlant fast(plan, instant);
  slow.initialize(21.0);
  fast.initialize(21.0);
  auto u = idle_inputs(21.0);
  u.occupants = 90.0;
  for (int i = 0; i < 20; ++i) {  // 20 minutes after the audience arrives
    slow.step(u, 60.0);
    fast.step(u, 60.0);
  }
  EXPECT_LT(mean(slow.air_temps()), mean(fast.air_temps()));
}

TEST(Plant, HvacPowerSignAndMagnitude) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  plant.initialize(21.0);
  auto u = idle_inputs(21.0);
  u.vav_flows_m3_s.assign(4, 0.5);
  u.supply_temp_c = 13.0;
  // 2 m^3/s total * 1206 * (13 - 21) ~= -19.3 kW.
  EXPECT_NEAR(plant.hvac_power_w(u), -19296.0, 50.0);
  u.supply_temp_c = 21.0;
  EXPECT_NEAR(plant.hvac_power_w(u), 0.0, 1e-9);
}

TEST(Plant, AirTempLookupById) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  EXPECT_DOUBLE_EQ(plant.air_temp_of(27), 20.5);
  EXPECT_THROW((void)plant.air_temp_of(99), std::invalid_argument);
}

TEST(Plant, InputValidation) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  auto u = idle_inputs();
  EXPECT_THROW(plant.step(u, 0.0), std::invalid_argument);
  u.vav_flows_m3_s.assign(2, 0.0);  // wrong VAV count
  EXPECT_THROW(plant.step(u, 60.0), std::invalid_argument);
  EXPECT_THROW((void)plant.hvac_power_w(u), std::invalid_argument);
}

TEST(Plant, ConfigValidation) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::PlantConfig bad;
  bad.air_heat_capacity_j_k = 0.0;
  EXPECT_THROW(sim::ZonalPlant(plan, bad), std::invalid_argument);
  bad = {};
  bad.mixing_delay_tau_s = -1.0;
  EXPECT_THROW(sim::ZonalPlant(plan, bad), std::invalid_argument);
  bad = {};
  bad.mixing_length_m = 0.0;
  EXPECT_THROW(sim::ZonalPlant(plan, bad), std::invalid_argument);
}
