// Tests for the Fanger PMV/PPD thermal-comfort model.

#include "auditherm/hvac/comfort.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hvac = auditherm::hvac;

TEST(Comfort, NeutralConditionsNearZeroPmv) {
  // A classic near-neutral point: 1.2 met, 0.5 clo, ~24.5 degC.
  hvac::ComfortInputs in;
  in.air_temp_c = 24.5;
  in.mean_radiant_temp_c = 24.5;
  in.metabolic_rate_met = 1.2;
  in.clothing_clo = 0.5;
  in.relative_humidity = 0.5;
  in.air_velocity_m_s = 0.1;
  const auto r = hvac::predicted_mean_vote(in);
  EXPECT_NEAR(r.pmv, 0.0, 0.35);
  EXPECT_LT(r.ppd, 12.0);
}

TEST(Comfort, Iso7730ReferencePoint) {
  // ISO 7730 Table D.1 row: ta=tr=22, v=0.1, RH=60%, 1.2 met, 0.5 clo
  // gives PMV ~= -0.75.
  hvac::ComfortInputs in;
  in.air_temp_c = 22.0;
  in.mean_radiant_temp_c = 22.0;
  in.air_velocity_m_s = 0.1;
  in.relative_humidity = 0.6;
  in.metabolic_rate_met = 1.2;
  in.clothing_clo = 0.5;
  const auto r = hvac::predicted_mean_vote(in);
  EXPECT_NEAR(r.pmv, -0.75, 0.12);
}

TEST(Comfort, PmvMonotoneInTemperature) {
  hvac::ComfortInputs in;
  double prev = -10.0;
  for (double t = 16.0; t <= 30.0; t += 2.0) {
    in.air_temp_c = t;
    in.mean_radiant_temp_c = t;
    const auto r = hvac::predicted_mean_vote(in);
    EXPECT_GT(r.pmv, prev);
    prev = r.pmv;
  }
}

TEST(Comfort, PpdMinimizedAtNeutral) {
  // Find the temperature with PMV closest to 0; PPD there must be ~5%.
  hvac::ComfortInputs in;
  double best_ppd = 100.0;
  for (double t = 18.0; t <= 28.0; t += 0.1) {
    in.air_temp_c = t;
    in.mean_radiant_temp_c = t;
    const auto r = hvac::predicted_mean_vote(in);
    best_ppd = std::min(best_ppd, r.ppd);
  }
  EXPECT_NEAR(best_ppd, 5.0, 0.5);
}

TEST(Comfort, ComfortBand) {
  EXPECT_TRUE(hvac::within_comfort_band({0.4, 8.0}));
  EXPECT_TRUE(hvac::within_comfort_band({-0.5, 10.0}));
  EXPECT_FALSE(hvac::within_comfort_band({0.6, 13.0}));
}

TEST(Comfort, PaperSensitivityClaim) {
  // Section V: a 2 degC spatial difference moves PMV by ~0.5 for the
  // seated audience, i.e. sensitivity ~0.25/K (we accept 0.15-0.45).
  hvac::ComfortInputs in;
  in.air_temp_c = 21.0;
  in.mean_radiant_temp_c = 21.0;
  const double sens = hvac::pmv_temperature_sensitivity(in);
  EXPECT_GT(sens, 0.15);
  EXPECT_LT(sens, 0.45);
  EXPECT_THROW((void)hvac::pmv_temperature_sensitivity(in, 0.0),
               std::invalid_argument);
}

TEST(Comfort, NeutralTemperatureSolvesPmvZero) {
  hvac::ComfortInputs in;
  in.metabolic_rate_met = 1.0;
  in.clothing_clo = 1.0;
  in.air_velocity_m_s = 0.12;
  in.relative_humidity = 0.45;
  const double t = hvac::neutral_temperature(in);
  EXPECT_GT(t, 18.0);
  EXPECT_LT(t, 27.0);
  in.air_temp_c = t;
  in.mean_radiant_temp_c = t;
  EXPECT_NEAR(hvac::predicted_mean_vote(in).pmv, 0.0, 1e-6);
}

TEST(Comfort, NeutralTemperatureFallsWithClothing) {
  hvac::ComfortInputs light;
  light.clothing_clo = 0.5;
  hvac::ComfortInputs heavy;
  heavy.clothing_clo = 1.2;
  EXPECT_GT(hvac::neutral_temperature(light),
            hvac::neutral_temperature(heavy));
}

TEST(Comfort, InputValidation) {
  hvac::ComfortInputs in;
  in.relative_humidity = 1.5;
  EXPECT_THROW((void)hvac::predicted_mean_vote(in), std::invalid_argument);
  in = {};
  in.metabolic_rate_met = 0.0;
  EXPECT_THROW((void)hvac::predicted_mean_vote(in), std::invalid_argument);
  in = {};
  in.air_velocity_m_s = -0.1;
  EXPECT_THROW((void)hvac::predicted_mean_vote(in), std::invalid_argument);
  in = {};
  in.clothing_clo = -0.5;
  EXPECT_THROW((void)hvac::predicted_mean_vote(in), std::invalid_argument);
}

/// Property sweep over a realistic envelope of conditions: PMV stays on
/// the 7-point scale, PPD in [5, 100], and PPD follows the closed-form
/// curve of PMV.
struct ComfortCase {
  double temp;
  double rh;
  double met;
  double clo;
};

class ComfortProperty : public ::testing::TestWithParam<ComfortCase> {};

TEST_P(ComfortProperty, OutputsWellFormed) {
  const auto p = GetParam();
  hvac::ComfortInputs in;
  in.air_temp_c = p.temp;
  in.mean_radiant_temp_c = p.temp;
  in.relative_humidity = p.rh;
  in.metabolic_rate_met = p.met;
  in.clothing_clo = p.clo;
  const auto r = hvac::predicted_mean_vote(in);
  EXPECT_GT(r.pmv, -4.5);
  EXPECT_LT(r.pmv, 4.5);
  EXPECT_GE(r.ppd, 5.0 - 1e-9);
  EXPECT_LE(r.ppd, 100.0);
  const double expected_ppd =
      100.0 - 95.0 * std::exp(-0.03353 * std::pow(r.pmv, 4.0) -
                              0.2179 * r.pmv * r.pmv);
  EXPECT_NEAR(r.ppd, expected_ppd, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, ComfortProperty,
    ::testing::Values(ComfortCase{18.0, 0.3, 1.0, 1.0},
                      ComfortCase{21.0, 0.5, 1.0, 0.8},
                      ComfortCase{24.0, 0.5, 1.2, 0.5},
                      ComfortCase{27.0, 0.7, 1.4, 0.4},
                      ComfortCase{30.0, 0.6, 2.0, 0.3},
                      ComfortCase{16.0, 0.4, 1.1, 1.2},
                      ComfortCase{22.0, 0.2, 0.9, 0.6},
                      ComfortCase{25.0, 0.9, 1.0, 0.5}));
