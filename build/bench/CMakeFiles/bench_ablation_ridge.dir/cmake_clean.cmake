file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ridge.dir/bench_ablation_ridge.cpp.o"
  "CMakeFiles/bench_ablation_ridge.dir/bench_ablation_ridge.cpp.o.d"
  "bench_ablation_ridge"
  "bench_ablation_ridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
