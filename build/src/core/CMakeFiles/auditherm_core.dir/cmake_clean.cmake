file(REMOVE_RECURSE
  "CMakeFiles/auditherm_core.dir/pipeline.cpp.o"
  "CMakeFiles/auditherm_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/auditherm_core.dir/split.cpp.o"
  "CMakeFiles/auditherm_core.dir/split.cpp.o.d"
  "libauditherm_core.a"
  "libauditherm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
