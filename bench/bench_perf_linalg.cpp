// Performance microbenchmarks for the numeric kernels (google-benchmark):
// matrix products, the three factorizations, least squares and the Jacobi
// eigensolver at the sizes the pipeline actually uses (27 sensors -> 27-61
// column regressions, 27x27 Laplacians, 54x54 augmented systems).

#include <benchmark/benchmark.h>

#include <random>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/least_squares.hpp"
#include "bench_common.hpp"

namespace linalg = auditherm::linalg;
using linalg::Matrix;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
  return m;
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  const auto a = random_matrix(n + 4, n, seed);
  auto spd = linalg::gram(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiply)->Arg(8)->Arg(16)->Arg(27)->Arg(54)->Complexity();

void BM_Gram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(1000, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gram(a, a));
  }
}
BENCHMARK(BM_Gram)->Arg(16)->Arg(34)->Arg(61);

void BM_QrFactorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(1000, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::QrDecomposition(a));
  }
}
BENCHMARK(BM_QrFactorize)->Arg(16)->Arg(34)->Arg(61);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 5);
  const auto b = random_matrix(n, 27, 6);
  for (auto _ : state) {
    linalg::CholeskyDecomposition chol(a);
    benchmark::DoNotOptimize(chol.solve(b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(16)->Arg(34)->Arg(61);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 7);
  const auto b = random_matrix(n, 1, 8);
  for (auto _ : state) {
    linalg::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(16)->Arg(27)->Arg(54);

void BM_EigenSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_symmetric(a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EigenSymmetric)->Arg(8)->Arg(16)->Arg(27)->Arg(54)->Complexity();

void BM_LeastSquaresRidge(benchmark::State& state) {
  // The exact shape of the paper's second-order occupied-mode regression:
  // ~1800 transitions x 61 parameters, 27 outputs.
  const auto z = random_matrix(1800, 61, 10);
  const auto y = random_matrix(1800, 27, 11);
  linalg::LeastSquaresOptions opts;
  opts.ridge = 1e-7;
  opts.relative_ridge = true;
  opts.prefer_qr = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve_least_squares(z, y, opts));
  }
}
BENCHMARK(BM_LeastSquaresRidge);

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsSession obs_session;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
