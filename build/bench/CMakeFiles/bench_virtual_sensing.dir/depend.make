# Empty dependencies file for bench_virtual_sensing.
# This may be replaced when dependencies are built.
