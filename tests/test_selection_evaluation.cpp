// Tests for cluster-mean prediction evaluation (the Table II metric).

#include "auditherm/selection/evaluation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace selection = auditherm::selection;
namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Cluster {1, 2, 3}: values 19, 20, 21 -> mean 20. Cluster {4, 5}:
/// values 23, 25 -> mean 24.
MultiTrace make_validation(std::size_t n = 10) {
  MultiTrace trace(TimeGrid(0, 30, n), {1, 2, 3, 4, 5});
  for (std::size_t k = 0; k < n; ++k) {
    trace.set(k, 0, 19.0);
    trace.set(k, 1, 20.0);
    trace.set(k, 2, 21.0);
    trace.set(k, 3, 23.0);
    trace.set(k, 4, 25.0);
  }
  return trace;
}

const selection::ClusterSets kClusters{{1, 2, 3}, {4, 5}};

}  // namespace

TEST(SelectionEval, ExactSensorGivesZeroError) {
  const auto validation = make_validation();
  selection::Selection sel;
  sel.per_cluster = {{2}, {4}};  // 2 hits cluster A's mean exactly
  const auto errors = selection::evaluate_cluster_mean_prediction(
      validation, kClusters, sel);
  ASSERT_EQ(errors.per_cluster_abs.size(), 2u);
  for (double e : errors.per_cluster_abs[0]) EXPECT_DOUBLE_EQ(e, 0.0);
  for (double e : errors.per_cluster_abs[1]) EXPECT_DOUBLE_EQ(e, 1.0);
  EXPECT_DOUBLE_EQ(errors.percentile(99.0), 1.0);
}

TEST(SelectionEval, MeanOfMultipleSelectedSensors) {
  const auto validation = make_validation();
  selection::Selection sel;
  sel.per_cluster = {{1, 3}, {4, 5}};  // means: 20 (exact), 24 (exact)
  const auto errors = selection::evaluate_cluster_mean_prediction(
      validation, kClusters, sel);
  EXPECT_DOUBLE_EQ(errors.percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(errors.rms(), 0.0);
}

TEST(SelectionEval, CrossZoneSelectionSeesTheGap) {
  const auto validation = make_validation();
  selection::Selection sel;
  sel.per_cluster = {{2}, {2}};  // cluster B represented by a cool sensor
  const auto errors = selection::evaluate_cluster_mean_prediction(
      validation, kClusters, sel);
  // Cluster B error = |20 - 24| = 4.
  EXPECT_DOUBLE_EQ(errors.percentile(99.0), 4.0);
}

TEST(SelectionEval, PooledCollectsAllClusters) {
  const auto validation = make_validation(5);
  selection::Selection sel;
  sel.per_cluster = {{1}, {4}};
  const auto errors = selection::evaluate_cluster_mean_prediction(
      validation, kClusters, sel);
  EXPECT_EQ(errors.pooled().size(), 10u);  // 5 rows x 2 clusters
}

TEST(SelectionEval, SkipsRowsWithMissingData) {
  auto validation = make_validation(6);
  validation.clear(0, 0);
  validation.clear(0, 1);
  validation.clear(0, 2);  // cluster A fully missing at row 0
  selection::Selection sel;
  sel.per_cluster = {{2}, {4}};
  const auto errors = selection::evaluate_cluster_mean_prediction(
      validation, kClusters, sel);
  EXPECT_EQ(errors.per_cluster_abs[0].size(), 5u);
  EXPECT_EQ(errors.per_cluster_abs[1].size(), 6u);
}

TEST(SelectionEval, Validation) {
  const auto validation = make_validation();
  selection::Selection wrong_count;
  wrong_count.per_cluster = {{1}};
  EXPECT_THROW((void)selection::evaluate_cluster_mean_prediction(
                   validation, kClusters, wrong_count),
               std::invalid_argument);
  selection::Selection empty_cluster;
  empty_cluster.per_cluster = {{1}, {}};
  EXPECT_THROW((void)selection::evaluate_cluster_mean_prediction(
                   validation, kClusters, empty_cluster),
               std::invalid_argument);
}

TEST(SelectionEval, PercentileOfEmptyThrows) {
  selection::ClusterMeanErrors empty;
  EXPECT_THROW((void)empty.percentile(99.0), std::runtime_error);
  EXPECT_THROW((void)empty.rms(), std::runtime_error);
}
