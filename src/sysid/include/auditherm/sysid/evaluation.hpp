#pragma once

/// \file evaluation.hpp
/// Multi-step prediction evaluation (Section IV.C).
///
/// The paper judges a model by simulating it open-loop over a daily window
/// (13.5 h in occupied mode) from a measured initial state with measured
/// inputs, then reporting per-sensor RMS errors, their CDF over sensors
/// (Fig. 3) and high percentiles (Table I, Fig. 5).

#include <optional>
#include <vector>

#include "auditherm/hvac/schedule.hpp"
#include "auditherm/sysid/model.hpp"
#include "auditherm/timeseries/multi_trace.hpp"
#include "auditherm/timeseries/segmentation.hpp"

namespace auditherm::sysid {

/// One open-loop simulated window aligned to trace rows.
struct WindowPrediction {
  std::size_t first_row = 0;  ///< trace row of the first predicted sample
  linalg::Matrix predicted;   ///< steps x p, channel order = model states
};

/// Aggregated prediction-error statistics.
struct PredictionEvaluation {
  std::vector<timeseries::ChannelId> channels;  ///< model state order

  /// Per-window, per-channel RMS (windows x p); NaN where a channel had no
  /// valid comparison samples in a window.
  linalg::Matrix window_channel_rms;

  /// Per-channel RMS pooled over all windows.
  linalg::Vector channel_rms;

  /// Per-channel pooled absolute errors (for CDFs / percentiles).
  std::vector<linalg::Vector> channel_abs_errors;

  /// RMS over every pooled error sample.
  double pooled_rms = 0.0;

  std::size_t window_count = 0;

  /// Percentile over channels of the per-channel RMS (Table I's
  /// "RMS of prediction error at 90th percentile").
  [[nodiscard]] double channel_rms_percentile(double p) const;

  /// Per-channel percentile of |error| (the paper's per-sensor error
  /// ranges); NaN for channels without samples.
  [[nodiscard]] linalg::Vector channel_abs_percentile(double p) const;
};

/// Evaluator configuration.
struct EvaluationOptions {
  /// Maximum simulated steps per window (27 = 13.5 h at the standard
  /// 30-minute samples).
  std::size_t horizon_samples = 27;
  /// Windows yielding fewer predicted steps than this are skipped.
  std::size_t min_steps = 4;
  /// How far into a window we may scan for a fully valid initial state.
  std::size_t max_start_scan = 12;
};

/// Enumerate evaluation windows: maximal runs of rows that are in the
/// requested HVAC mode AND have every listed channel valid. The paper's
/// daily occupied window (6:00-21:00) produces one run per clean day.
[[nodiscard]] std::vector<timeseries::Segment> mode_windows(
    const timeseries::TraceView& trace, const hvac::Schedule& schedule,
    hvac::Mode mode, const std::vector<timeseries::ChannelId>& required,
    std::size_t min_length = 2);

/// Simulate the model over one window.
///
/// Scans (up to options.max_start_scan rows) for a starting point where
/// the model's state channels are valid for the needed history, then
/// simulates with measured inputs. Returns std::nullopt when no valid
/// start exists or fewer than options.min_steps steps fit.
[[nodiscard]] std::optional<WindowPrediction> predict_window(
    const ThermalModel& model, const timeseries::TraceView& trace,
    const timeseries::Segment& window, const EvaluationOptions& options);

/// Evaluate the model over many windows, comparing predictions against
/// measurements wherever the measurement exists.
[[nodiscard]] PredictionEvaluation evaluate_prediction(
    const ThermalModel& model, const timeseries::TraceView& trace,
    const std::vector<timeseries::Segment>& windows,
    const EvaluationOptions& options);

}  // namespace auditherm::sysid
