#include "auditherm/sim/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace auditherm::sim {

double distance(const Position& a, const Position& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double distance(const Position& p, const Diffuser& d) noexcept {
  const double vx = d.end.x - d.start.x;
  const double vy = d.end.y - d.start.y;
  const double len2 = vx * vx + vy * vy;
  if (len2 == 0.0) return distance(p, d.start);
  double t = ((p.x - d.start.x) * vx + (p.y - d.start.y) * vy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return std::hypot(p.x - (d.start.x + t * vx), p.y - (d.start.y + t * vy));
}

FloorPlan::FloorPlan(double width_m, double depth_m,
                     std::vector<SensorSite> sensors,
                     std::vector<Diffuser> air_outlets, std::size_t vav_count,
                     double seating_front_y, double seating_back_y)
    : width_(width_m),
      depth_(depth_m),
      sensors_(std::move(sensors)),
      outlets_(std::move(air_outlets)),
      vav_count_(vav_count),
      seating_front_y_(seating_front_y),
      seating_back_y_(seating_back_y) {
  if (width_ <= 0.0 || depth_ <= 0.0) {
    throw std::invalid_argument("FloorPlan: non-positive dimensions");
  }
  if (sensors_.empty()) {
    throw std::invalid_argument("FloorPlan: no sensors");
  }
  if (vav_count_ == 0 || outlets_.empty()) {
    throw std::invalid_argument("FloorPlan: HVAC supply missing");
  }
  if (seating_front_y_ < 0.0 || seating_back_y_ > depth_ ||
      seating_front_y_ >= seating_back_y_) {
    throw std::invalid_argument("FloorPlan: bad seating band");
  }
  std::unordered_set<timeseries::ChannelId> seen;
  for (const auto& s : sensors_) {
    if (!seen.insert(s.id).second) {
      throw std::invalid_argument("FloorPlan: duplicate sensor id");
    }
    if (s.position.x < 0.0 || s.position.x > width_ || s.position.y < 0.0 ||
        s.position.y > depth_) {
      throw std::invalid_argument("FloorPlan: sensor outside room");
    }
  }
  for (const auto& o : outlets_) {
    for (const auto& p : {o.start, o.end}) {
      if (p.x < 0.0 || p.x > width_ || p.y < 0.0 || p.y > depth_) {
        throw std::invalid_argument("FloorPlan: outlet outside room");
      }
    }
  }
}

FloorPlan FloorPlan::brauer_auditorium() {
  // Reconstruction of the paper's Fig. 1 layout. Front (y ~ 0) holds the
  // podium, thermostats and the two air outlets; seating fills the back.
  std::vector<SensorSite> sensors = {
      // Front (HVAC-dominated, cool) group — the paper's correlation
      // cluster 2: {3, 6, 7, 8, 13, 14, 17, 23, 28, 33, 38}.
      {3, {2.0, 1.0}, false},
      {6, {6.0, 2.5}, false},
      {7, {10.0, 1.5}, false},
      {8, {14.0, 2.0}, false},
      {13, {4.0, 2.0}, false},
      {14, {8.0, 2.8}, false},
      {17, {12.0, 2.5}, false},
      {23, {6.5, 1.2}, false},
      {28, {9.5, 3.2}, false},
      {33, {3.0, 3.0}, false},
      {38, {13.0, 3.4}, false},
      // Back (occupant-dominated, warm) group — correlation cluster 1:
      // {1, 12, 15, 16, 18, 19, 20, 26, 27, 30, 31, 32, 34, 37}.
      {1, {8.0, 6.0}, false},
      {12, {2.5, 7.0}, false},
      {15, {5.0, 8.0}, false},
      {16, {11.0, 7.5}, false},
      {18, {13.5, 8.5}, false},
      {19, {3.5, 9.0}, false},
      {20, {9.0, 8.0}, false},
      {26, {6.0, 10.0}, false},
      {27, {8.5, 10.8}, false},  // deepest seat block: warmest in Fig. 2
      {30, {12.0, 10.2}, false},
      {31, {10.5, 9.3}, false},
      {32, {7.0, 9.0}, false},
      {34, {4.5, 10.5}, false},
      {37, {2.0, 10.8}, false},
      // The HVAC's own thermostats on both sides of the front wall.
      {40, {0.5, 0.8}, true},
      {41, {15.5, 0.8}, true},
  };
  // Two linear ceiling diffusers spanning the room's width: one over the
  // podium/front area, one over the mid seating; the deep back rows sit
  // farthest from conditioned air, which (with the audience heat) makes
  // them the warm zone of Fig. 2.
  std::vector<Diffuser> outlets = {{{1.0, 1.5}, {15.0, 1.5}},
                                   {{1.0, 6.0}, {15.0, 6.0}}};
  return FloorPlan(16.0, 12.0, std::move(sensors), std::move(outlets),
                   /*vav_count=*/4, /*seating_front_y=*/4.0,
                   /*seating_back_y=*/11.5);
}

FloorPlan FloorPlan::synthetic_grid(std::size_t sensor_count) {
  if (sensor_count == 0) {
    throw std::invalid_argument("FloorPlan::synthetic_grid: zero sensors");
  }
  return synthetic_campus(1, sensor_count);
}

FloorPlan FloorPlan::synthetic_campus(std::size_t hall_count,
                                      std::size_t sensors_per_hall) {
  if (hall_count == 0 || sensors_per_hall == 0) {
    throw std::invalid_argument(
        "FloorPlan::synthetic_campus: zero halls or sensors");
  }
  // Each hall: near-square grid at 2 m pitch, slightly wider than deep
  // (like the real hall), sitting behind a 3 m front band that holds the
  // first diffuser. Halls line up along x with a corridor between them —
  // wide enough that cross-hall trace similarity comes only from shared
  // weather/HVAC, keeping the zones thermally disjoint.
  constexpr double kPitch = 2.0;
  constexpr double kCorridor = 6.0;
  const auto cols = static_cast<std::size_t>(std::ceil(
      std::sqrt(static_cast<double>(sensors_per_hall) * 4.0 / 3.0)));
  const std::size_t rows = (sensors_per_hall + cols - 1) / cols;
  const double hall_width = kPitch * static_cast<double>(cols + 1);
  const double depth = 3.0 + kPitch * static_cast<double>(rows + 1);
  const double width = static_cast<double>(hall_count) * hall_width +
                       static_cast<double>(hall_count - 1) * kCorridor;

  std::vector<SensorSite> sensors;
  sensors.reserve(hall_count * sensors_per_hall + 2);
  std::vector<Diffuser> outlets;
  outlets.reserve(2 * hall_count);
  timeseries::ChannelId next_id = 1;
  for (std::size_t h = 0; h < hall_count; ++h) {
    const double x0 = static_cast<double>(h) * (hall_width + kCorridor);
    for (std::size_t s = 0; s < sensors_per_hall; ++s) {
      while (next_id == 40 || next_id == 41) ++next_id;  // thermostat ids
      // The 100..199 band is reserved for the non-temperature modalities
      // (VAV flows, occupancy, lighting, ambient, supply, CO2); campus-scale
      // sensor counts continue in the extended range >= 200, matching the
      // CLI channel conventions and serve::classify_channels.
      if (next_id >= 100 && next_id < 200) next_id = 200;
      const std::size_t r = s / cols;
      const std::size_t c = s % cols;
      sensors.push_back({next_id++,
                         {x0 + kPitch * static_cast<double>(c + 1),
                          3.0 + kPitch * static_cast<double>(r + 1)},
                         false, h});
    }
    // One diffuser over the hall's front band, one over its mid-depth,
    // spanning the hall like the real auditorium's linear outlets.
    outlets.push_back({{x0 + 1.0, 1.5}, {x0 + hall_width - 1.0, 1.5}});
    outlets.push_back(
        {{x0 + 1.0, depth * 0.5}, {x0 + hall_width - 1.0, depth * 0.5}});
  }
  // The shared HVAC's wall thermostats at the campus front corners.
  sensors.push_back({40, {0.5, 0.8}, true, 0});
  sensors.push_back({41, {width - 0.5, 0.8}, true, hall_count - 1});

  // VAV count scales with the total served area.
  const std::size_t vav_count =
      std::max<std::size_t>(4, hall_count * sensors_per_hall / 32);
  return FloorPlan(width, depth, std::move(sensors), std::move(outlets),
                   vav_count, /*seating_front_y=*/3.0,
                   /*seating_back_y=*/depth - 1.0);
}

std::vector<timeseries::ChannelId> FloorPlan::sensor_ids() const {
  std::vector<timeseries::ChannelId> ids;
  ids.reserve(sensors_.size());
  for (const auto& s : sensors_) ids.push_back(s.id);
  return ids;
}

std::vector<timeseries::ChannelId> FloorPlan::wireless_ids() const {
  std::vector<timeseries::ChannelId> ids;
  for (const auto& s : sensors_) {
    if (!s.is_thermostat) ids.push_back(s.id);
  }
  return ids;
}

std::vector<timeseries::ChannelId> FloorPlan::thermostat_ids() const {
  std::vector<timeseries::ChannelId> ids;
  for (const auto& s : sensors_) {
    if (s.is_thermostat) ids.push_back(s.id);
  }
  return ids;
}

const SensorSite& FloorPlan::site(timeseries::ChannelId id) const {
  for (const auto& s : sensors_) {
    if (s.id == id) return s;
  }
  throw std::invalid_argument("FloorPlan::site: unknown sensor id " +
                              std::to_string(id));
}

std::size_t FloorPlan::zone_count() const noexcept {
  std::size_t max_zone = 0;
  for (const auto& s : sensors_) max_zone = std::max(max_zone, s.zone);
  return max_zone + 1;
}

std::size_t FloorPlan::zone_of(timeseries::ChannelId id) const {
  return site(id).zone;
}

bool FloorPlan::in_seating(const Position& p) const noexcept {
  return p.y >= seating_front_y_ && p.y <= seating_back_y_;
}

double FloorPlan::wall_distance(const Position& p) const noexcept {
  const double dx = std::min(p.x, width_ - p.x);
  const double dy = std::min(p.y, depth_ - p.y);
  return std::max(0.0, std::min(dx, dy));
}

}  // namespace auditherm::sim
