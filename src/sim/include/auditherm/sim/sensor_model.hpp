#pragma once

/// \file sensor_model.hpp
/// Measurement model for the modified Emerson wireless thermostats.
///
/// The paper's sensors are accurate to +/-0.5 degC and transmit only when
/// the reading moves more than 0.1 degC; the base station otherwise holds
/// the last report. We reproduce both artifacts (Gaussian noise, 0.1 degC
/// quantization, report-on-change hold) plus wireless dropout windows.

#include <cstdint>
#include <random>

namespace auditherm::sim {

/// Measurement-noise parameters.
struct SensorNoiseConfig {
  double noise_std_c = 0.12;       ///< within the +/-0.5 degC accuracy spec
  double quantum_c = 0.1;          ///< ADC / reporting quantum
  double report_threshold_c = 0.1; ///< transmit only on larger changes
};

/// Per-sensor measurement channel with report-on-change semantics.
class SensorChannel {
 public:
  /// Throws std::invalid_argument on negative noise/quantum/threshold.
  explicit SensorChannel(const SensorNoiseConfig& config);

  /// Observe the true temperature; returns the value the base station
  /// holds after this observation (a new report or the previous one).
  double observe(double true_temp_c, std::mt19937_64& rng);

  /// Last value reported to the base station (NaN before the first report).
  [[nodiscard]] double last_report() const noexcept { return last_report_; }

  /// Forget the report state (e.g., after a dropout window).
  void reset() noexcept;

 private:
  SensorNoiseConfig config_;
  double last_report_;
};

}  // namespace auditherm::sim
