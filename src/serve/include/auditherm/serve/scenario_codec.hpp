#pragma once

/// \file scenario_codec.hpp
/// JSON decoding for fleet scenario generation — the inverse of
/// sim::scenario_to_json, in the same strict style as request_from_json:
/// unknown keys and wrongly typed values throw std::invalid_argument
/// naming the offending key path, because a typo'd knob silently falling
/// back to a default would simulate a *valid-looking but wrong* corpus.
///
/// Two body shapes feed the same SimulateRequest (both accepted by
/// `auditherm simulate` spec files and by the daemon's POST /simulate):
///
///   {"name": "hall", "days": 28, ...}                 one scenario
///
///   {"base_seed": 7, "out_dir": "fleet",              a fleet
///    "scenarios": [{"name": "a", ...}, ...]}
///
/// In the fleet form, scenarios that omit "seed" get
/// sim::derive_entity_seed(base_seed, index) — one base seed reproduces
/// the whole corpus while every building still draws an independent,
/// well-mixed 64-bit entity seed. Seeds are accepted as JSON integers up
/// to 2^53 (exact in a double) or as decimal strings for the full 64-bit
/// range, matching what scenario_to_json emits.

#include <string>
#include <vector>

#include "auditherm/serve/json.hpp"
#include "auditherm/sim/scenario.hpp"

namespace auditherm::serve {

/// Decode one scenario object. `where` prefixes every error message (the
/// fleet decoder passes "scenarios[i]"). Runs ScenarioSpec::validate()
/// before returning, so a decoded spec is always runnable.
[[nodiscard]] sim::ScenarioSpec scenario_from_json(
    const json::Value& body, const std::string& where = "scenario spec");

/// A decoded simulate request: the resolved specs (entity seeds filled
/// in) plus the optional output directory.
struct SimulateRequest {
  std::vector<sim::ScenarioSpec> specs;
  std::string out_dir;
};

/// Decode a POST /simulate body (or a --spec/--fleet file): either a
/// single scenario object or the {"base_seed", "out_dir", "scenarios"}
/// fleet envelope described in the header comment.
[[nodiscard]] SimulateRequest simulate_request_from_json(
    const json::Value& body);

}  // namespace auditherm::serve
