#pragma once

/// \file split.hpp
/// Usable-day accounting and train/validation splitting (Section IV.C).
///
/// The paper collected 98 days, excluded days with sensor and server
/// failures leaving 64, and used half for training and half for
/// validation. These helpers reproduce that bookkeeping on any gapped
/// trace: a day is usable when enough of its mode-window rows have every
/// required channel valid.

#include <vector>

#include "auditherm/hvac/schedule.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::core {

/// Result of splitting a trace into train/validation day sets.
struct DataSplit {
  std::vector<std::size_t> usable_days;
  std::vector<std::size_t> train_days;
  std::vector<std::size_t> validation_days;
  /// Row masks over the source trace: true when the row's day belongs to
  /// the respective set (mode is NOT folded in; AND with a mode mask).
  std::vector<bool> train_mask;
  std::vector<bool> validation_mask;
};

/// Fraction of a day's rows in `mode` where all `required` channels are
/// valid; 0 when the day has no mode rows on the grid.
[[nodiscard]] double day_mode_coverage(
    const timeseries::MultiTrace& trace,
    const std::vector<timeseries::ChannelId>& required,
    const hvac::Schedule& schedule, hvac::Mode mode, std::size_t day);

/// Split `trace` chronologically: usable days are found, then the first
/// `train_fraction` of them train and the rest validate.
/// Throws std::invalid_argument for fractions outside (0, 1) or
/// min_coverage outside [0, 1].
[[nodiscard]] DataSplit split_dataset(
    const timeseries::MultiTrace& trace,
    const std::vector<timeseries::ChannelId>& required,
    const hvac::Schedule& schedule, hvac::Mode mode,
    double min_coverage = 0.5, double train_fraction = 0.5);

/// Elementwise AND of two row masks; throws std::invalid_argument on size
/// mismatch.
[[nodiscard]] std::vector<bool> and_masks(const std::vector<bool>& a,
                                          const std::vector<bool>& b);

/// Row mask selecting the given day indices on a grid.
[[nodiscard]] std::vector<bool> day_mask(const timeseries::TimeGrid& grid,
                                         const std::vector<std::size_t>& days);

}  // namespace auditherm::core
