# Empty compiler generated dependencies file for auditherm_hvac.
# This may be replaced when dependencies are built.
