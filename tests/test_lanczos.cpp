// Property tests for the sparse Lanczos partial eigensolver: across four
// seeded matrix families (random SPD, near-diagonal, clustered spectra,
// rank-deficient graph Laplacians) the m smallest eigenpairs must agree
// with the dense eigen_symmetric_smallest reference to 1e-8, with
// orthonormal sign-pinned eigenvectors, bitwise thread-count invariance,
// and — end to end — identical cluster labels through the k-NN-sparsified
// spectral pipeline on well-separated synthetic halls.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "auditherm/clustering/similarity.hpp"
#include "auditherm/clustering/spectral.hpp"
#include "auditherm/core/parallel.hpp"
#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/matrix.hpp"
#include "auditherm/linalg/sparse.hpp"
#include "auditherm/linalg/vector_ops.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace core = auditherm::core;
namespace linalg = auditherm::linalg;
namespace clustering = auditherm::clustering;
namespace ts = auditherm::timeseries;
using linalg::CsrMatrix;
using linalg::Matrix;
using linalg::Vector;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
  return m;
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  const auto a = random_matrix(n + 2, n, seed);
  auto spd = linalg::gram(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.25;
  return spd;
}

Matrix near_diagonal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> diag(1.0, 10.0);
  std::normal_distribution<double> off(0.0, 1e-3);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = diag(rng);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = off(rng);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

/// Q D Q^T with triples of equal eigenvalues: degenerate-subspace stress.
Matrix clustered_spectrum(std::size_t n, std::uint64_t seed) {
  const linalg::QrDecomposition qr(random_matrix(n, n, seed));
  const auto q = qr.thin_q();
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = 1.0 + static_cast<double>(i / 3);
  Matrix qd = q;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) qd(i, j) *= d[j];
  auto a = linalg::outer_product(qd, q);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
  return a;
}

/// Unnormalized Laplacian of a graph with 2-3 disconnected blocks: the
/// zero eigenvalue repeats once per component, which only the
/// deflated-restart path of the Lanczos solver can reproduce.
Matrix rank_deficient_laplacian(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t blocks = 2 + seed % 2;
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i % blocks != j % blocks) continue;
      const double v = 0.1 + unit(rng);
      w(i, j) = v;
      w(j, i) = v;
    }
  }
  return clustering::laplacian(w);
}

Matrix family_matrix(std::size_t family, std::size_t n, std::uint64_t seed) {
  switch (family) {
    case 0: return random_spd(n, seed);
    case 1: return near_diagonal(n, seed);
    case 2: return clustered_spectrum(n, seed);
    default: return rank_deficient_laplacian(n, seed);
  }
}

const char* family_name(std::size_t family) {
  switch (family) {
    case 0: return "spd";
    case 1: return "near_diagonal";
    case 2: return "clustered";
    default: return "laplacian";
  }
}

double spectrum_scale(const Vector& eigenvalues) {
  double scale = 1.0;
  for (const double v : eigenvalues) scale = std::max(scale, std::abs(v));
  return scale;
}

/// Lanczos output vs the dense partial reference: eigenvalues to 1e-8,
/// columns orthonormal and sign-pinned, residuals small, and isolated
/// eigenvalues reproducing the reference direction elementwise.
void expect_matches_dense(const Matrix& a, const linalg::SymmetricEigen& ref,
                          const linalg::SymmetricEigen& got, std::size_t m,
                          const std::string& context) {
  ASSERT_EQ(got.eigenvalues.size(), m) << context;
  ASSERT_EQ(got.eigenvectors.cols(), m) << context;
  ASSERT_EQ(got.eigenvectors.rows(), a.rows()) << context;
  const std::size_t n = a.rows();
  const double scale = spectrum_scale(ref.eigenvalues);

  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_NEAR(got.eigenvalues[j], ref.eigenvalues[j], 1e-8 * scale)
        << context << " eigenvalue " << j;
  }

  for (std::size_t j = 0; j < m; ++j) {
    const Vector vj = got.eigenvectors.col_vector(j);
    EXPECT_NEAR(linalg::norm2(vj), 1.0, 1e-10) << context << " column " << j;
    for (std::size_t l = j + 1; l < m; ++l) {
      EXPECT_NEAR(linalg::dot(vj, got.eigenvectors.col_vector(l)), 0.0, 1e-9)
          << context << " columns " << j << "," << l;
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    const Vector v = got.eigenvectors.col_vector(j);

    const Vector av = a * v;
    const Vector lv = linalg::scale(got.eigenvalues[j], v);
    EXPECT_NEAR(linalg::norm2(linalg::subtract(av, lv)), 0.0, 1e-8 * scale)
        << context << " residual " << j;

    // Sign convention: the largest-|component| entry is positive.
    std::size_t arg = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (std::abs(v[i]) > std::abs(v[arg])) arg = i;
    EXPECT_GE(v[arg], 0.0) << context << " sign pin " << j;

    // Isolated eigenvalues must reproduce the reference direction (both
    // solvers share the sign pin; the |dot| check tolerates last-ulp pin
    // flips on exact +/- magnitude ties). The gap ABOVE the last returned
    // pair is unknowable from a partial reference — the full spectrum may
    // continue with more copies of the same value — so the last index only
    // counts as isolated when the reference covers the pair above it.
    const double gap_tol = 1e-6 * scale;
    const bool isolated =
        (j == 0 || ref.eigenvalues[j] - ref.eigenvalues[j - 1] > gap_tol) &&
        (j + 1 < ref.eigenvalues.size() &&
         ref.eigenvalues[j + 1] - ref.eigenvalues[j] > gap_tol);
    if (isolated) {
      const Vector r = ref.eigenvectors.col_vector(j);
      const double d = linalg::dot(v, r);
      EXPECT_GT(std::abs(d), 1.0 - 1e-8)
          << context << " isolated direction " << j;
      const double sign = d < 0.0 ? -1.0 : 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(v[i], sign * r[i], 1e-7)
            << context << " vector " << j << " entry " << i;
      }
    }
  }
}

/// Canonical relabeling by first appearance, so two clusterings compare
/// as partitions regardless of cluster numbering.
std::vector<std::size_t> canonical_labels(const std::vector<std::size_t>& in) {
  std::vector<std::size_t> mapping;
  std::vector<std::size_t> out;
  out.reserve(in.size());
  for (const std::size_t label : in) {
    std::size_t canon = mapping.size();
    for (std::size_t k = 0; k < mapping.size(); ++k) {
      if (mapping[k] == label) {
        canon = k;
        break;
      }
    }
    if (canon == mapping.size()) mapping.push_back(label);
    out.push_back(canon);
  }
  return out;
}

/// Campus-style traces: `halls` groups of `per_hall` sensors, each hall
/// driven by its own smooth signal, per-sensor deterministic noise far
/// smaller than the hall separation. Channel ids are 1..n in hall order.
ts::MultiTrace campus_trace(std::size_t halls, std::size_t per_hall,
                            std::size_t samples, std::uint64_t seed) {
  std::vector<ts::ChannelId> ids;
  for (std::size_t i = 0; i < halls * per_hall; ++i)
    ids.push_back(static_cast<ts::ChannelId>(i + 1));
  ts::MultiTrace trace(ts::TimeGrid(0, 60, samples), ids);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.05);
  for (std::size_t c = 0; c < ids.size(); ++c) {
    const std::size_t hall = c / per_hall;
    const double w = 0.15 + 0.17 * static_cast<double>(hall);
    const double phase = 0.9 * static_cast<double>(hall);
    for (std::size_t k = 0; k < samples; ++k) {
      const double t = static_cast<double>(k);
      const double base = std::sin(w * t + phase) +
                          0.4 * std::cos(0.5 * w * t) +
                          0.8 * static_cast<double>(hall);
      trace.set(k, c, 21.0 + base + noise(rng));
    }
  }
  return trace;
}

}  // namespace

// ---------------------------------------------------------------------------
// Property sweep: Lanczos vs the dense partial solver over four families.
// ---------------------------------------------------------------------------

TEST(Lanczos, MatchesDensePartialAcrossSeedsAndFamilies) {
  const std::size_t sizes[] = {12, 24, 40, 64};
  for (std::uint64_t seed = 0; seed < 48; ++seed) {
    const std::size_t family = seed % 4;
    const std::size_t n = sizes[(seed / 4) % 4];
    const std::size_t m = 2 + seed % 5;  // 2..6 smallest pairs
    const auto a = family_matrix(family, n, 3000 + seed);
    const auto ref = linalg::eigen_symmetric_smallest(a, m);
    const auto got =
        linalg::eigen_symmetric_smallest_sparse(CsrMatrix::from_dense(a), m);
    const std::string context = std::string("lanczos ") + family_name(family) +
                                " n=" + std::to_string(n) +
                                " m=" + std::to_string(m) +
                                " seed=" + std::to_string(seed);
    expect_matches_dense(a, ref, got, m, context);
  }
}

TEST(Lanczos, FullSpectrumRequestMatchesDense) {
  // m == n exercises the exhausted-complement path of every deflated pass.
  const auto a = random_spd(10, 91);
  const auto ref = linalg::eigen_symmetric_smallest(a, 10);
  const auto got =
      linalg::eigen_symmetric_smallest_sparse(CsrMatrix::from_dense(a), 10);
  expect_matches_dense(a, ref, got, 10, "full spectrum n=10");
}

TEST(Lanczos, DisconnectedLaplacianRecoversAllZeroModes) {
  // 4 components: the zero eigenvalue has multiplicity 4, which a single
  // Krylov run cannot see — only the deflated restarts surface copies
  // 2, 3, and 4.
  Matrix w(16, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      if (i / 4 == j / 4) {
        w(i, j) = 0.5 + 0.1 * static_cast<double>(i + j);
        w(j, i) = w(i, j);
      }
    }
  }
  const auto l = clustering::laplacian(w);
  const auto got =
      linalg::eigen_symmetric_smallest_sparse(CsrMatrix::from_dense(l), 6);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(got.eigenvalues[j], 0.0, 1e-9) << "zero mode " << j;
  }
  EXPECT_GT(got.eigenvalues[4], 0.5);  // spectral gap after the zero modes
}

TEST(Lanczos, Validation) {
  const auto a = CsrMatrix::from_dense(random_spd(6, 11));
  EXPECT_THROW((void)linalg::eigen_symmetric_smallest_sparse(
                   CsrMatrix::from_dense(Matrix(2, 3)), 1),
               std::invalid_argument);
  EXPECT_THROW((void)linalg::eigen_symmetric_smallest_sparse(a, 0),
               std::invalid_argument);
  // m > n is a caller sizing bug: rejected like the dense path.
  EXPECT_THROW((void)linalg::eigen_symmetric_smallest_sparse(a, 7),
               std::invalid_argument);
  EXPECT_NO_THROW((void)linalg::eigen_symmetric_smallest_sparse(a, 6));
}

TEST(Lanczos, TrivialSizes) {
  Matrix one{{4.0}};
  const auto got =
      linalg::eigen_symmetric_smallest_sparse(CsrMatrix::from_dense(one), 1);
  ASSERT_EQ(got.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(got.eigenvalues[0], 4.0);
  EXPECT_DOUBLE_EQ(got.eigenvectors(0, 0), 1.0);
}

// ---------------------------------------------------------------------------
// Thread-count bitwise determinism.
// ---------------------------------------------------------------------------

TEST(Lanczos, BitwiseStableAcrossThreads) {
  const auto l = rank_deficient_laplacian(128, 9);
  const auto csr = CsrMatrix::from_dense(l);
  linalg::SymmetricEigen serial;
  {
    core::ThreadCountScope scope(1);
    serial = linalg::eigen_symmetric_smallest_sparse(csr, 6);
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    const auto eig = linalg::eigen_symmetric_smallest_sparse(csr, 6);
    EXPECT_EQ(eig.eigenvalues, serial.eigenvalues) << "threads=" << threads;
    EXPECT_EQ(eig.eigenvectors, serial.eigenvectors) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: k-NN sparsified graph + Lanczos vs the dense path.
// ---------------------------------------------------------------------------

TEST(Lanczos, KnnGraphSeparatesHallsWithDiagnostics) {
  const auto trace = campus_trace(3, 9, 240, 77);
  std::vector<ts::ChannelId> ids;
  for (int i = 1; i <= 27; ++i) ids.push_back(i);

  clustering::SimilarityOptions knn;
  knn.sparsification = clustering::GraphSparsification::kKnn;
  knn.knn_k = 4;
  const auto graph = clustering::build_similarity_graph(trace, ids, knn);

  // Halls are far better correlated internally than across: the k-NN
  // graph keeps only within-hall edges, one component per hall.
  EXPECT_EQ(graph.component_count, 3u);
  // Symmetrized union of per-vertex top-4: between 9*4/2 and 9*4 edges
  // per hall.
  EXPECT_GE(graph.edge_count, 3u * 18u);
  EXPECT_LE(graph.edge_count, 3u * 36u);
  for (std::size_t i = 0; i < 27; ++i) {
    for (std::size_t j = 0; j < 27; ++j) {
      if (i / 9 != j / 9) {
        EXPECT_EQ(graph.weights(i, j), 0.0)
            << "cross-hall edge " << i << "," << j;
      }
    }
  }
}

TEST(Lanczos, KnnSparsifiedLabelsMatchDensePath) {
  const auto trace = campus_trace(3, 9, 240, 78);
  std::vector<ts::ChannelId> ids;
  for (int i = 1; i <= 27; ++i) ids.push_back(i);

  // Dense path: the paper's epsilon/quantile graph + Jacobi reference.
  const auto dense_graph = clustering::build_similarity_graph(trace, ids);
  clustering::SpectralOptions dense_options;
  dense_options.eigen_method = linalg::EigenMethod::kJacobi;
  const auto dense_result =
      clustering::spectral_cluster(dense_graph, dense_options);

  // Sparse path: k-NN graph + forced Lanczos partial spectrum.
  clustering::SimilarityOptions knn;
  knn.sparsification = clustering::GraphSparsification::kKnn;
  knn.knn_k = 4;
  const auto knn_graph = clustering::build_similarity_graph(trace, ids, knn);
  clustering::SpectralOptions sparse_options;
  sparse_options.eigen_method = linalg::EigenMethod::kLanczos;
  const auto sparse_result =
      clustering::spectral_cluster(knn_graph, sparse_options);

  // Both discover the three halls and agree label-for-label (as
  // partitions; cluster numbering is canonicalized).
  EXPECT_EQ(dense_result.cluster_count, 3u);
  EXPECT_EQ(sparse_result.cluster_count, 3u);
  EXPECT_EQ(canonical_labels(sparse_result.labels),
            canonical_labels(dense_result.labels));
}

TEST(Lanczos, SparseSolverMatchesDenseOnSameKnnGraph) {
  // Same k-NN graph through both eigensolvers: labels must be identical,
  // isolating the solver swap from the graph change.
  const auto trace = campus_trace(4, 7, 240, 79);
  std::vector<ts::ChannelId> ids;
  for (int i = 1; i <= 28; ++i) ids.push_back(i);
  clustering::SimilarityOptions knn;
  knn.sparsification = clustering::GraphSparsification::kKnn;
  knn.knn_k = 3;
  const auto graph = clustering::build_similarity_graph(trace, ids, knn);

  clustering::SpectralOptions jacobi_options;
  jacobi_options.eigen_method = linalg::EigenMethod::kJacobi;
  const auto jacobi = clustering::spectral_cluster(graph, jacobi_options);

  clustering::SpectralOptions lanczos_options;
  lanczos_options.eigen_method = linalg::EigenMethod::kLanczos;
  const auto lanczos = clustering::spectral_cluster(graph, lanczos_options);

  EXPECT_EQ(jacobi.cluster_count, 4u);
  EXPECT_EQ(lanczos.cluster_count, jacobi.cluster_count);
  EXPECT_EQ(canonical_labels(lanczos.labels), canonical_labels(jacobi.labels));
}
