#pragma once

/// \file bench_cluster_quality.hpp
/// Shared reporting for Figs. 7 and 8: per-cluster CDFs of pairwise
/// maximum temperature differences and intra-cluster correlation
/// summaries, for a given similarity metric over several cluster counts.

#include <cmath>

#include "bench_common.hpp"

namespace bench {

/// Mean pairwise correlation among `ids` on `trace` (1.0 for singletons —
/// a single-sensor cluster is trivially coherent).
inline double mean_intra_correlation(
    const auditherm::timeseries::TraceView& trace,
    const std::vector<auditherm::timeseries::ChannelId>& ids) {
  if (ids.size() < 2) return 1.0;
  const auto sub = trace.select_channels(ids);
  const auto corr = auditherm::timeseries::correlation_matrix(sub);
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      total += corr(i, j);
      ++n;
    }
  }
  return total / static_cast<double>(n);
}

/// Print the Fig. 7/8 panel for one metric: for each k, the per-cluster
/// max-difference distribution (median / 95th pct over sensor pairs) and
/// the mean intra-cluster correlation, plus the all-sensor baseline.
/// The graph and its spectrum are precomputed once by the caller (the
/// stage-cache split), so the k-loop only redoes the cheap embedding.
inline void report_metric_quality(
    const auditherm::sim::AuditoriumDataset& dataset,
    const auditherm::timeseries::TraceView& training,
    const auditherm::clustering::SimilarityGraph& graph,
    const auditherm::clustering::SpectralAnalysis& spectrum,
    const std::vector<std::size_t>& cluster_counts,
    std::size_t eigengap_choice) {
  using namespace auditherm;

  const auto overall = timeseries::pairwise_max_differences(
      training, dataset.wireless_ids());
  std::printf("overall (all sensors): max-diff p50 %.2f, p95 %.2f degC\n\n",
              linalg::percentile(overall, 50.0),
              linalg::percentile(overall, 95.0));

  for (std::size_t k : cluster_counts) {
    clustering::SpectralOptions spec;
    spec.cluster_count = k;
    const auto result = clustering::spectral_cluster(graph, spectrum, spec);
    std::printf("k = %zu%s\n", k,
                k == eigengap_choice ? "  (the eigengap's choice)" : "");
    const auto clusters = result.clusters();
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const auto diffs =
          timeseries::pairwise_max_differences(training, clusters[c]);
      const double corr = mean_intra_correlation(training, clusters[c]);
      if (diffs.empty()) {
        std::printf("  cluster %zu (%zu sensors): singleton, corr %.2f\n",
                    c + 1, clusters[c].size(), corr);
        continue;
      }
      std::printf("  cluster %zu (%2zu sensors): max-diff p50 %.2f, p95 %.2f "
                  "degC | mean intra-corr %.2f\n",
                  c + 1, clusters[c].size(),
                  linalg::percentile(diffs, 50.0),
                  linalg::percentile(diffs, 95.0), corr);
    }
  }
}

}  // namespace bench
