// Tests for the synthetic weather generator.

#include "auditherm/sim/weather.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sim = auditherm::sim;
namespace ts = auditherm::timeseries;

TEST(Weather, DeterministicForSameSeed) {
  sim::WeatherConfig config;
  sim::WeatherModel a(config, 10);
  sim::WeatherModel b(config, 10);
  for (ts::Minutes t = 0; t < 10 * ts::kMinutesPerDay; t += 97) {
    EXPECT_DOUBLE_EQ(a.temperature_at(t), b.temperature_at(t));
  }
}

TEST(Weather, DifferentSeedsDiffer) {
  sim::WeatherConfig config;
  sim::WeatherModel a(config, 5);
  config.seed += 1;
  sim::WeatherModel b(config, 5);
  bool any_diff = false;
  for (ts::Minutes t = 0; t < 5 * ts::kMinutesPerDay; t += 60) {
    if (a.temperature_at(t) != b.temperature_at(t)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Weather, SeasonalRampWinterToSpring) {
  sim::WeatherConfig config;  // 1 -> 18 degC over 98 days
  sim::WeatherModel model(config, 98);
  // Compare deterministic daily means at the ends of the season.
  double early = 0.0, late = 0.0;
  for (ts::Minutes m = 0; m < ts::kMinutesPerDay; m += 30) {
    early += model.deterministic_at(m);
    late += model.deterministic_at(97 * ts::kMinutesPerDay + m);
  }
  early /= 48.0;
  late /= 48.0;
  EXPECT_NEAR(early, config.start_mean_c, 0.5);
  EXPECT_GT(late, early + 10.0);
}

TEST(Weather, DiurnalMinimumNearConfiguredMinute) {
  sim::WeatherConfig config;
  sim::WeatherModel model(config, 3);
  double min_temp = 1e9;
  ts::Minutes argmin = 0;
  for (ts::Minutes m = 0; m < ts::kMinutesPerDay; m += 10) {
    const double v = model.deterministic_at(ts::kMinutesPerDay + m);
    if (v < min_temp) {
      min_temp = v;
      argmin = m;
    }
  }
  EXPECT_NEAR(static_cast<double>(argmin),
              static_cast<double>(config.coldest_minute), 30.0);
}

TEST(Weather, DiurnalAmplitudeMatchesConfig) {
  sim::WeatherConfig config;
  sim::WeatherModel model(config, 2);
  double lo = 1e9, hi = -1e9;
  for (ts::Minutes m = 0; m < ts::kMinutesPerDay; m += 5) {
    const double v = model.deterministic_at(m);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(hi - lo, 2.0 * config.diurnal_amplitude_c, 0.2);
}

TEST(Weather, QueriesOutsideRangeAreClamped) {
  sim::WeatherModel model(sim::WeatherConfig{}, 2);
  EXPECT_DOUBLE_EQ(model.temperature_at(-100), model.temperature_at(0));
  const auto last = 2 * ts::kMinutesPerDay - 1;
  EXPECT_DOUBLE_EQ(model.temperature_at(last + 5000),
                   model.temperature_at(last));
}

TEST(Weather, ConfigValidation) {
  sim::WeatherConfig bad;
  EXPECT_THROW(sim::WeatherModel(bad, 0), std::invalid_argument);
  bad = {};
  bad.ar1_coefficient = 1.0;
  EXPECT_THROW(sim::WeatherModel(bad, 5), std::invalid_argument);
  bad = {};
  bad.day_offset_std_c = -1.0;
  EXPECT_THROW(sim::WeatherModel(bad, 5), std::invalid_argument);
  bad = {};
  bad.season_days = 0.0;
  EXPECT_THROW(sim::WeatherModel(bad, 5), std::invalid_argument);
}

TEST(Weather, StochasticSpreadIsBounded) {
  sim::WeatherConfig config;
  sim::WeatherModel model(config, 30);
  for (ts::Minutes t = 0; t < 30 * ts::kMinutesPerDay; t += 123) {
    const double diff =
        std::abs(model.temperature_at(t) - model.deterministic_at(t));
    EXPECT_LT(diff, 6.0 * config.day_offset_std_c);
  }
}
