// Tests for the stochastic occupancy / lighting calendar.

#include "auditherm/sim/occupancy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sim = auditherm::sim;
namespace ts = auditherm::timeseries;

TEST(Occupancy, DeterministicForSameSeed) {
  sim::OccupancyConfig config;
  sim::OccupancySchedule a(config, 30);
  sim::OccupancySchedule b(config, 30);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].attendance, b.events()[i].attendance);
  }
}

TEST(Occupancy, NeverExceedsCapacity) {
  sim::OccupancyConfig config;
  sim::OccupancySchedule schedule(config, 60);
  for (ts::Minutes t = 0; t < 60 * ts::kMinutesPerDay; t += 7) {
    const double o = schedule.occupants_at(t);
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, static_cast<double>(config.capacity));
  }
}

TEST(Occupancy, EventsLieWithinTheirDays) {
  sim::OccupancySchedule schedule(sim::OccupancyConfig{}, 30);
  ASSERT_FALSE(schedule.events().empty());
  for (const auto& e : schedule.events()) {
    EXPECT_LT(e.start, e.end);
    EXPECT_EQ(ts::day_of(e.start), ts::day_of(e.end - 1));
    EXPECT_GT(e.attendance, 0);
  }
}

TEST(Occupancy, OccupantsPresentDuringEvent) {
  sim::OccupancySchedule schedule(sim::OccupancyConfig{}, 60);
  const auto& e = schedule.events().front();
  const auto mid = (e.start + e.end) / 2;
  EXPECT_NEAR(schedule.occupants_at(mid), e.attendance, e.attendance * 0.5 + 1);
  // Well before the event: empty (assuming no adjacent event).
  EXPECT_DOUBLE_EQ(schedule.occupants_at(e.start - 60), 0.0);
}

TEST(Occupancy, RampsInAndOut) {
  sim::OccupancyConfig config;
  config.ramp_minutes = 10;
  sim::OccupancySchedule schedule(config, 60);
  const auto& e = schedule.events().front();
  const double at_start = schedule.occupants_at(e.start);
  const double after_ramp = schedule.occupants_at(e.start + 10);
  EXPECT_LT(at_start, after_ramp);
  EXPECT_NEAR(after_ramp, e.attendance, 1e-9);
}

TEST(Occupancy, LightingOnDuringEventsWithMargin) {
  sim::OccupancySchedule schedule(sim::OccupancyConfig{}, 60);
  const auto& e = schedule.events().front();
  EXPECT_DOUBLE_EQ(schedule.lighting_at(e.start + 1), 1.0);
  EXPECT_DOUBLE_EQ(schedule.lighting_at(e.start - 10), 1.0);   // margin
  EXPECT_DOUBLE_EQ(schedule.lighting_at(e.start - 120), 0.0);
}

TEST(Occupancy, WeekendsQuieterThanWeekdays) {
  sim::OccupancyConfig config;
  sim::OccupancySchedule schedule(config, 98);
  std::size_t weekday_events = 0, weekend_events = 0;
  for (const auto& e : schedule.events()) {
    const int dow = schedule.day_of_week(ts::day_of(e.start));
    if (dow == 0 || dow == 6) {
      ++weekend_events;
    } else {
      ++weekday_events;
    }
  }
  EXPECT_GT(weekday_events, 4 * weekend_events);
}

TEST(Occupancy, FridaySeminarsAreWellAttended) {
  sim::OccupancyConfig config;
  sim::OccupancySchedule schedule(config, 98);
  std::size_t big_friday_noons = 0;
  for (const auto& e : schedule.events()) {
    const auto day = ts::day_of(e.start);
    if (schedule.day_of_week(day) == 5 &&
        ts::minute_of_day(e.start) == 12 * 60 && e.attendance >= 60) {
      ++big_friday_noons;
    }
  }
  EXPECT_GE(big_friday_noons, 5u);  // ~14 Fridays at 90% probability
}

TEST(Occupancy, DayOfWeekAnchored) {
  sim::OccupancyConfig config;  // day 0 = Thursday
  sim::OccupancySchedule schedule(config, 7);
  EXPECT_EQ(schedule.day_of_week(0), 4);
  EXPECT_EQ(schedule.day_of_week(1), 5);
  EXPECT_EQ(schedule.day_of_week(3), 0);  // Sunday
}

TEST(Occupancy, ConfigValidation) {
  sim::OccupancyConfig bad;
  EXPECT_THROW(sim::OccupancySchedule(bad, 0), std::invalid_argument);
  bad = {};
  bad.capacity = 0;
  EXPECT_THROW(sim::OccupancySchedule(bad, 5), std::invalid_argument);
  bad = {};
  bad.class_probability = 1.5;
  EXPECT_THROW(sim::OccupancySchedule(bad, 5), std::invalid_argument);
}
