file(REMOVE_RECURSE
  "CMakeFiles/auditherm_sim.dir/dataset.cpp.o"
  "CMakeFiles/auditherm_sim.dir/dataset.cpp.o.d"
  "CMakeFiles/auditherm_sim.dir/floorplan.cpp.o"
  "CMakeFiles/auditherm_sim.dir/floorplan.cpp.o.d"
  "CMakeFiles/auditherm_sim.dir/occupancy.cpp.o"
  "CMakeFiles/auditherm_sim.dir/occupancy.cpp.o.d"
  "CMakeFiles/auditherm_sim.dir/plant.cpp.o"
  "CMakeFiles/auditherm_sim.dir/plant.cpp.o.d"
  "CMakeFiles/auditherm_sim.dir/sensor_model.cpp.o"
  "CMakeFiles/auditherm_sim.dir/sensor_model.cpp.o.d"
  "CMakeFiles/auditherm_sim.dir/weather.cpp.o"
  "CMakeFiles/auditherm_sim.dir/weather.cpp.o.d"
  "libauditherm_sim.a"
  "libauditherm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
